//! The event-driven online fleet engine.
//!
//! Where the epoch replay materializes a whole-horizon schedule up front,
//! [`FleetEngine`] runs the fleet *online*: arrival, departure, warm-up and
//! epoch-tick events flow through per-server-group shards of pooled
//! [`EventQueue`](pictor_sim::EventQueue)s ([`ShardedQueues`]), merged
//! deterministically in (time, shard, insertion) order. That structure is
//! what lets it scale to 1000+ heterogeneous servers and millions of
//! session arrivals, and what admits the dynamic policies replay cannot
//! express — utilization-driven autoscaling with warm-up lag, migration of
//! sessions off contended servers, and admission backpressure with a
//! bounded retry queue (see [`autoscale`](super::autoscale)).
//!
//! # Equivalence with replay
//!
//! With a single group, one shard, no dynamic policies and the
//! [`DataPlane::Simulated`] plane, the engine is *provably* the same
//! process as [`FleetSpec::run`]:
//!
//! * the three-way arrival merge (open Poisson stream, pre-drawn client
//!   joins, dynamic rejoins/retries) pops requests in exactly replay's
//!   (time, heap-sequence) order, with identical RNG draw sequences;
//! * placement sees identical [`ServerLoad`] snapshots, because arrivals
//!   interleave with shard events at their *effective* time (`start_epoch ×
//!   epoch`): every departure and tick at or before that boundary lands
//!   first, and all previously admitted sessions start at or before the
//!   candidate's epoch, so the critical-point span check
//!   ([`fits_span`](EngineState::fits_span)) equals replay's whole-span
//!   per-epoch scan;
//! * the occupancy carve, job order, seed names and reduction stream are
//!   replay's own ([`simulate_interval`]).
//!
//! `tests/fleet_engine_differential.rs` holds the byte-for-byte proof
//! obligation; `tests/fleet_engine_determinism.rs` pins the thread × shard
//! matrix.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use std::sync::Arc;

use pictor_apps::App;
use pictor_hw::{GpuModel, ServerSpec};
use pictor_render::contention::contention_states;
use pictor_render::SystemConfig;
use pictor_sim::rng::exponential;
use pictor_sim::{EventId, SeedTree, ShardedQueues, SimDuration, SimTime, TailQuantiles};

use crate::suite::default_threads;

use super::faults::{FaultKind, FaultPlan, Health};
use super::policy::VictimCandidate;
use super::replay::{simulate_interval, IntervalResult};
use super::report::{
    AutoscaleStats, BackpressureStats, FaultStats, FleetDynamics, FleetReport, MigrationStats,
};
use super::{
    sample_session_secs, ArrivalConfig, AutoscaleConfig, BackpressureConfig, FleetSpec,
    MigrationConfig, PlacementPolicy, ServerLoad, SloSpec, WorkloadMix,
};

// ---------------------------------------------------------------------------
// engine configuration
// ---------------------------------------------------------------------------

/// A homogeneous slice of the fleet: `servers` machines sharing one
/// [`SystemConfig`]. Groups are the unit of heterogeneity (GPU model per
/// group), sharding (one event shard per group, folded modulo the shard
/// count) and autoscaling (watermarks evaluated per group).
#[derive(Clone)]
pub struct GroupSpec {
    /// Group label (reports and debugging).
    pub label: String,
    /// Servers in the group.
    pub servers: usize,
    /// The configuration every server in the group runs.
    pub config: SystemConfig,
}

impl GroupSpec {
    /// A group of `servers` machines running `config`.
    pub fn new(label: &str, servers: usize, config: SystemConfig) -> Self {
        GroupSpec {
            label: label.into(),
            servers,
            config,
        }
    }

    /// A group of paper-chassis servers fitted with `model` GPUs, labelled
    /// by the GPU (`ServerSpec::with_gpu`); everything else comes from
    /// `base`.
    pub fn with_gpu(servers: usize, base: &SystemConfig, model: GpuModel) -> Self {
        let mut config = base.clone();
        config.server = ServerSpec::with_gpu(model);
        GroupSpec {
            label: model.label().into(),
            servers,
            config,
        }
    }
}

/// How the engine turns placed sessions into FPS/RTT samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPlane {
    /// Full `CloudSystem` simulation per occupancy interval — replay's own
    /// kernel ([`simulate_interval`]), byte-compatible with it.
    Simulated,
    /// Closed-form analytic plane from the paper's contention model:
    /// per-interval [`contention_states`] feed FPS and pipeline-sum RTT
    /// with deterministic hash jitter. ~10⁴× cheaper per session-epoch;
    /// this is what makes million-session days tractable.
    Surrogate,
}

/// The outcome of offering one arrival to the control plane — what a
/// serving layer reports back to the requesting client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The session was placed.
    Admitted {
        /// Session id (stable across migration and fault recovery).
        session: u64,
        /// The server the session starts on.
        server: usize,
        /// First occupied epoch.
        start_epoch: u64,
        /// One past the last occupied epoch.
        end_epoch: u64,
    },
    /// No feasible server and no queue slot: the request is lost.
    Rejected,
    /// Parked in the bounded backpressure queue; the engine re-offers it
    /// later on its own (the caller must not re-offer).
    Parked,
    /// The arrival's start epoch lies at or past the horizon: dropped
    /// silently, exactly like replay's past-horizon requests.
    PastHorizon,
}

/// Recorded occupancy of one server by one session segment (a migrated
/// session contributes one segment per server it visited).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Session id.
    pub session: u64,
    /// Server index.
    pub server: usize,
    /// First occupied epoch.
    pub start_epoch: u64,
    /// One past the last occupied epoch.
    pub end_epoch: u64,
    /// GPU memory the session holds while resident, MiB.
    pub gpu_mib: u64,
}

/// Ground-truth trace of an engine run for invariant checking: every
/// placement segment, per-server capacities and activity windows, and the
/// full admission ledger. The property suite
/// (`crates/core/tests/fleet_invariants.rs`) audits conservation, capacity
/// and no-drop guarantees from this, independently of the report.
#[derive(Debug, Clone, Default)]
pub struct FleetAudit {
    /// Placement attempts (initial offers + backpressure re-offers).
    pub offered: u64,
    /// Distinct sessions admitted.
    pub admitted: u64,
    /// Attempts finally rejected.
    pub rejected: u64,
    /// Attempts parked in the backpressure queue (every park counts).
    pub queued: u64,
    /// Parked attempts re-offered.
    pub retried: u64,
    /// Parked attempts whose retry fell past the horizon.
    pub expired: u64,
    /// Attempts refused because the queue was full.
    pub dropped: u64,
    /// Sessions migrated between servers.
    pub migrations: u64,
    /// Largest pending-queue length observed.
    pub peak_queue: usize,
    /// Session slots per server.
    pub slots_per_server: usize,
    /// Every occupancy segment of the run.
    pub placements: Vec<Placement>,
    /// Per-server *pristine* GPU capacity, MiB (degradation steps are in
    /// [`FleetAudit::capacity_steps`]).
    pub gpu_capacity_mib: Vec<u64>,
    /// Per-server active windows `[start, end)` in epochs (the whole
    /// horizon when autoscaling is off).
    pub activity: Vec<Vec<(u64, u64)>>,
    /// Per-server capacity changes from fault injection: `(epoch, new
    /// MiB)` in epoch order; empty without degradation. Effective capacity
    /// at epoch `e` is the last step at or before `e`, else the pristine
    /// value.
    pub capacity_steps: Vec<Vec<(u64, u64)>>,
    /// Sessions orphaned by crashes.
    pub orphaned: u64,
    /// Sessions evicted by capacity degradation.
    pub evicted: u64,
    /// Orphaned/evicted sessions successfully re-placed.
    pub recovered: u64,
    /// Orphaned/evicted sessions lost for good.
    pub lost: u64,
}

/// The online fleet runner. See the module docs for the execution model;
/// [`FleetEngine::from_spec`] builds the configuration that reproduces a
/// [`FleetSpec`] exactly.
///
/// Cloning is cheap-ish (configs and an `Arc`'d policy) and is how the
/// serving layer partitions a fleet into independent core shards
/// (`pictor_serve::shard_engines`).
#[derive(Clone)]
pub struct FleetEngine {
    /// Server groups, concatenated in order to form the fleet's server
    /// index space.
    pub groups: Vec<GroupSpec>,
    /// Session slots per server.
    pub slots_per_server: usize,
    /// Arrival/churn model (rates are per server, fleet-wide total scales
    /// with the summed group sizes).
    pub arrivals: ArrivalConfig,
    /// What arriving sessions run.
    pub mix: WorkloadMix,
    /// Placement policy.
    pub policy: Arc<dyn PlacementPolicy>,
    /// Service-level objectives.
    pub slo: SloSpec,
    /// Epoch length.
    pub epoch: SimDuration,
    /// Fleet horizon in epochs.
    pub epochs: u64,
    /// Warm-up simulated time per data-plane interval.
    pub warmup: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// Event shard count (groups fold onto shards modulo this). Reports
    /// are byte-identical for any value ≥ 1.
    pub shards: usize,
    /// FPS/RTT sample source.
    pub data_plane: DataPlane,
    /// Utilization-driven per-group autoscaling.
    pub autoscale: Option<AutoscaleConfig>,
    /// Contention-relief session migration.
    pub migration: Option<MigrationConfig>,
    /// Bounded-queue admission backpressure.
    pub backpressure: Option<BackpressureConfig>,
    /// Deterministic fault injection ([`FaultPlan`]). `None` — or an
    /// *empty* plan — leaves every fault code path cold: the report is
    /// byte-identical to the fault-free engine.
    pub faults: Option<FaultPlan>,
}

impl FleetEngine {
    /// The engine configuration equivalent to `spec`: one group, one
    /// shard, simulated data plane, no dynamic policies. Running it
    /// reproduces `spec.run()` byte for byte.
    pub fn from_spec(spec: &FleetSpec) -> Self {
        FleetEngine {
            groups: vec![GroupSpec::new(
                "default",
                spec.servers,
                spec.server_config.clone(),
            )],
            slots_per_server: spec.slots_per_server,
            arrivals: spec.arrivals.clone(),
            mix: spec.mix.clone(),
            policy: Arc::clone(&spec.policy),
            slo: spec.slo,
            epoch: spec.epoch,
            epochs: spec.epochs,
            warmup: spec.warmup,
            seed: spec.seed,
            shards: 1,
            data_plane: DataPlane::Simulated,
            autoscale: None,
            migration: None,
            backpressure: None,
            faults: None,
        }
    }

    /// Total servers across all groups.
    pub fn total_servers(&self) -> usize {
        self.groups.iter().map(|g| g.servers).sum()
    }

    /// Runs on `PICTOR_THREADS` OS threads (default: available
    /// parallelism).
    pub fn run(&self) -> FleetReport {
        self.run_with_threads(default_threads())
    }

    /// Runs on exactly `threads` OS threads.
    pub fn run_with_threads(&self, threads: usize) -> FleetReport {
        self.run_audited(threads).0
    }

    /// Runs and also returns the invariant-checking audit trace.
    ///
    /// # Panics
    ///
    /// Panics if `threads`, `shards`, the group list, any group size,
    /// `slots_per_server`, `epochs` or the epoch length is zero, or a
    /// dynamic-policy config fails validation.
    pub fn run_audited(&self, threads: usize) -> (FleetReport, FleetAudit) {
        assert!(threads > 0, "need at least one thread");
        // The one-shot run is the incremental API driven to exhaustion:
        // `finish` drains the internal arrival source through the same
        // per-request step `run()` always used, so the two are the same
        // process byte for byte (tests/fleet_engine_differential.rs).
        self.live().finish(threads)
    }

    /// Opens the fleet for **incremental** driving: the caller feeds
    /// arrivals one at a time ([`LiveFleet::offer_arrival`]) and steps the
    /// epoch clock externally ([`LiveFleet::step_to`]) instead of `run()`
    /// owning the loop — the interface a long-running serving daemon needs.
    /// Internal arrival streams (open Poisson, closed clients, parked
    /// retries, fault-recovery re-offers) still fire: they are drained up
    /// to each offered timestamp, internal-before-external at equal times,
    /// so a run that offers the same external arrivals at the same times
    /// is deterministic.
    ///
    /// # Panics
    ///
    /// Panics on the same validation failures as [`FleetEngine::run_audited`].
    pub fn live(&self) -> LiveFleet<'_> {
        assert!(self.shards > 0, "need at least one shard");
        assert!(!self.groups.is_empty(), "fleet needs at least one group");
        assert!(
            self.groups.iter().all(|g| g.servers > 0),
            "every group needs at least one server"
        );
        assert!(self.slots_per_server > 0, "need at least one slot");
        assert!(self.epochs > 0, "fleet horizon must be positive");
        assert!(!self.epoch.is_zero(), "epoch length must be positive");
        if let Some(a) = &self.autoscale {
            a.validate();
        }
        if let Some(m) = &self.migration {
            m.validate();
        }
        if let Some(b) = &self.backpressure {
            b.validate();
        }
        if let Some(f) = &self.faults {
            f.validate();
        }
        let mut st = EngineState::new(self);
        if st.faults.is_some() {
            // Faults at epoch 0 strike before any placement (advance_to(0)
            // is a no-op for the first arrivals).
            st.fault_step(0);
        }
        LiveFleet { st, last_ns: 0 }
    }
}

// ---------------------------------------------------------------------------
// incremental driving
// ---------------------------------------------------------------------------

/// Per-session telemetry estimate from the live control-plane state (the
/// surrogate closed-form — cheap enough to stream on every poll).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionTelemetry {
    /// Session id.
    pub session: u64,
    /// Estimated frames per second under the current co-residency.
    pub fps: f64,
    /// Estimated end-to-end RTT, milliseconds.
    pub rtt_ms: f64,
}

/// A point-in-time view of the live fleet for status streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetSnapshot {
    /// Last fully processed epoch boundary.
    pub epoch: u64,
    /// Placement attempts so far (admission ledger).
    pub offered: u64,
    /// Distinct sessions admitted so far.
    pub admitted: u64,
    /// Attempts finally rejected so far.
    pub rejected: u64,
    /// Requests currently parked in the backpressure queue.
    pub queued_now: usize,
    /// Servers currently able to take placements.
    pub serving_servers: usize,
    /// Sessions currently resident across the fleet.
    pub resident_sessions: usize,
}

/// An open, incrementally driven fleet run — see [`FleetEngine::live`].
///
/// The caller owns the clock: every [`offer_arrival`](Self::offer_arrival)
/// and [`step_to`](Self::step_to) carries a nanosecond timestamp that must
/// be nondecreasing, and [`finish`](Self::finish) runs the data plane and
/// closes the books exactly as `run()` does.
pub struct LiveFleet<'a> {
    st: EngineState<'a>,
    last_ns: u64,
}

impl<'a> LiveFleet<'a> {
    /// Processes internal arrivals (open stream, client joins, retries)
    /// with timestamps at or before `upto_ns`.
    fn drain_internal(&mut self, upto_ns: u64) {
        while let Some(t) = self.st.source.peek_time() {
            if t > upto_ns {
                break;
            }
            let (t, req) = self.st.source.next().expect("peeked arrival");
            self.st.process_request(t, req);
        }
    }

    /// Offers one external arrival at `at_ns`: `app` for `duration_ns` of
    /// service. Internal arrivals due at or before `at_ns` are processed
    /// first (internal-before-external at equal times), then this request
    /// runs the same admission step `run()` uses.
    ///
    /// # Panics
    ///
    /// Panics if `at_ns` precedes an earlier offer or step.
    pub fn offer_arrival(&mut self, at_ns: u64, app: App, duration_ns: u64) -> Admission {
        assert!(
            at_ns >= self.last_ns,
            "arrivals must be offered in nondecreasing time order ({at_ns} < {})",
            self.last_ns
        );
        self.last_ns = at_ns;
        self.drain_internal(at_ns);
        self.st.process_request(
            at_ns,
            Request {
                app,
                duration_ns,
                client: None,
                parked: false,
                resume: None,
            },
        )
    }

    /// Advances the fleet to `at_ns` with no new arrival: internal
    /// arrivals due by then are processed and every epoch boundary at or
    /// before `at_ns` is ticked (departures, autoscale, migration,
    /// faults). Idle time in a serving daemon maps to this.
    ///
    /// # Panics
    ///
    /// Panics if `at_ns` precedes an earlier offer or step.
    pub fn step_to(&mut self, at_ns: u64) {
        assert!(
            at_ns >= self.last_ns,
            "steps must move forward in time ({at_ns} < {})",
            self.last_ns
        );
        self.last_ns = at_ns;
        self.drain_internal(at_ns);
        let boundary = (at_ns / self.st.eps).min(self.st.eng.epochs);
        self.st.advance_to(boundary);
    }

    /// The engine's epoch length in nanoseconds.
    pub fn epoch_ns(&self) -> u64 {
        self.st.eps
    }

    /// The run horizon in nanoseconds.
    pub fn horizon_ns(&self) -> u64 {
        self.st.horizon_ns
    }

    /// The last fully processed epoch boundary.
    pub fn current_epoch(&self) -> u64 {
        self.st.cur_epoch
    }

    /// A point-in-time control-plane snapshot.
    pub fn snapshot(&self) -> FleetSnapshot {
        FleetSnapshot {
            epoch: self.st.cur_epoch,
            offered: self.st.offered,
            admitted: self.st.next_session,
            rejected: self.st.rejected,
            queued_now: self.st.queue_len,
            serving_servers: self.st.srv.iter().filter(|s| s.serving()).count(),
            resident_sessions: self.st.resident.iter().sum(),
        }
    }

    /// Telemetry estimates for every session resident on `server` at
    /// `epoch`, in session-id order — the surrogate closed-form evaluated
    /// against the server's committed occupancy, so it is a pure function
    /// of the control-plane state (replay reproduces it byte for byte).
    pub fn server_telemetry(&self, server: usize, epoch: u64) -> Vec<SessionTelemetry> {
        let Some(srv) = self.st.srv.get(server) else {
            return Vec::new();
        };
        let sessions: Vec<(u64, &App)> = srv
            .live
            .iter()
            .map(|&si| &self.st.segs[si as usize])
            .filter(|seg| !seg.is_void() && seg.start <= epoch && epoch < seg.end)
            .map(|seg| (seg.session, &seg.app))
            .collect();
        if sessions.is_empty() {
            return Vec::new();
        }
        let config = &self.st.eng.groups[srv.group].config;
        let result = surrogate_interval(
            config,
            self.st.eng.seed,
            server,
            epoch,
            epoch + 1,
            &sessions,
        );
        let mut ids: Vec<u64> = sessions.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        ids.iter()
            .enumerate()
            .map(|(i, &session)| SessionTelemetry {
                session,
                fps: result.fps[0][i],
                rtt_ms: result.rtt_ms[i][0],
            })
            .collect()
    }

    /// Seals the run: drains every remaining internal arrival, advances to
    /// the horizon, runs the data plane and reduces the report — the same
    /// closing sequence as `run()`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn finish(mut self, threads: usize) -> (FleetReport, FleetAudit) {
        assert!(threads > 0, "need at least one thread");
        self.drain_internal(u64::MAX);
        let horizon = self.st.eng.epochs;
        self.st.advance_to(horizon);
        self.st.finish(threads)
    }
}

// ---------------------------------------------------------------------------
// control plane
// ---------------------------------------------------------------------------

/// Events flowing through the per-group shards. Everything order-sensitive
/// between same-time events is intra-group, and a group's events live on
/// exactly one shard where insertion order breaks ties — which is why the
/// report cannot depend on the shard count.
#[derive(Debug, Clone, Copy)]
enum ShardEvent {
    /// A session segment leaves its server at `end_epoch × epoch`.
    Departure { server: usize, seg: u32 },
    /// Per-group autoscale evaluation (the epoch is the event time).
    GroupTick { group: usize },
    /// A warming server becomes placeable.
    Warm { server: usize },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Active,
    Warming,
    Inactive,
}

struct Srv {
    group: usize,
    gpu_capacity_mib: u64,
    status: Status,
    /// Fault-injection health, orthogonal to the autoscale `status` (a
    /// crashed server stays `Active` in the autoscaler's books — the
    /// utilization denominator filters on `serving` instead).
    health: Health,
    /// Epoch the current non-`Healthy` health state began (downtime
    /// accounting).
    health_since: u64,
    /// Segment indices currently assigned here (admission order). Includes
    /// migration-created segments that start in a future epoch.
    live: Vec<u32>,
    /// Active windows `[start, end)`; `u64::MAX` end = still open.
    activity: Vec<(u64, u64)>,
}

impl Srv {
    /// Placeable: up per the autoscaler *and* healthy enough to serve.
    fn serving(&self) -> bool {
        self.status == Status::Active && self.health.serving()
    }
}

struct Seg {
    session: u64,
    app: App,
    server: usize,
    start: u64,
    end: u64,
    departure: EventId,
}

impl Seg {
    /// A crash/eviction can null a not-yet-started segment in place
    /// (`end == start`); such segments occupy nothing and emit no
    /// placement record.
    fn is_void(&self) -> bool {
        self.end <= self.start
    }
}

/// Recovery identity carried by a re-placement attempt for a session that
/// lost its server to a fault.
#[derive(Debug, Clone, Copy)]
struct Resume {
    /// The original session id (re-placement keeps it).
    session: u64,
    /// Placement attempts already failed.
    attempt: u32,
    /// Epoch the session lost its server.
    orphaned_at: u64,
}

/// One pending request in the online loop.
struct Request {
    app: App,
    duration_ns: u64,
    client: Option<usize>,
    /// True for backpressure retries: the attempt re-offers the original
    /// request without burning client RNG draws.
    parked: bool,
    /// Present for fault-recovery re-placements of orphaned sessions.
    resume: Option<Resume>,
}

/// A materialized fault operation, processed from the main-loop fault heap
/// at its epoch (never on a shard — cross-group effects must not depend on
/// the shard count).
#[derive(Debug, Clone, Copy)]
enum FaultOp {
    /// Begin a notified crash: `Draining` now, down after `drain_epochs`.
    Drain {
        drain_epochs: u64,
        restart_after: Option<u64>,
        warmup: u64,
    },
    /// The server goes `Down`, orphaning residents.
    Crash {
        restart_after: Option<u64>,
        warmup: u64,
    },
    /// GPU memory shrinks by `severity`; evict until capacity holds.
    Degrade {
        severity: f64,
        recover_after: Option<u64>,
    },
    /// Degradation heals: capacity returns to pristine.
    DegradeRecover,
    /// `Down` → `WarmingUp`.
    Restart { warmup: u64 },
    /// `WarmingUp` → `Healthy`: the server is placeable again.
    WarmDone,
    /// RTT inflation window opens on this server.
    Brownout {
        rtt_factor: f64,
        jitter_ms: f64,
        duration: u64,
    },
}

/// The three-way arrival merge. Classes replicate replay's heap-sequence
/// ordering at equal times: all open arrivals were pushed before all
/// client joins, which precede every dynamically pushed rejoin/retry; and
/// within each class, generation order is push order.
struct ArrivalSource {
    open_rng: Option<rand::rngs::SmallRng>,
    open_mean_gap_ns: f64,
    open_t: u64,
    open_next: Option<(u64, App, u64)>,
    /// Pre-drawn client first joins, sorted by (time, client).
    joins: Vec<(u64, usize, App, u64)>,
    join_cursor: usize,
    /// Dynamic heap keyed by (time, push order) with pooled payloads, so a
    /// steady state of bounded outstanding requests allocates nothing.
    dyn_heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    dyn_slots: Vec<Option<Request>>,
    dyn_free: Vec<u32>,
    dyn_order: u64,
    horizon_ns: u64,
    mix: WorkloadMix,
    arrivals: ArrivalConfig,
}

impl ArrivalSource {
    fn new(eng: &FleetEngine, tree: &SeedTree, horizon_ns: u64) -> Self {
        let total = eng.total_servers();
        let rate = eng.arrivals.open_rate_per_sec * total as f64;
        let mut src = ArrivalSource {
            open_rng: (rate > 0.0).then(|| tree.stream("open-arrivals")),
            open_mean_gap_ns: if rate > 0.0 { 1e9 / rate } else { 0.0 },
            open_t: 0,
            open_next: None,
            joins: Vec::new(),
            join_cursor: 0,
            dyn_heap: BinaryHeap::new(),
            dyn_slots: Vec::new(),
            dyn_free: Vec::new(),
            dyn_order: 0,
            horizon_ns,
            mix: eng.mix.clone(),
            arrivals: eng.arrivals.clone(),
        };
        src.advance_open();
        src
    }

    /// Draws the next open arrival lazily — one (gap, app, secs) triple per
    /// call, exactly replay's per-arrival draw sequence.
    fn advance_open(&mut self) {
        self.open_next = None;
        let Some(rng) = self.open_rng.as_mut() else {
            return;
        };
        self.open_t = self
            .open_t
            .saturating_add(exponential(rng, self.open_mean_gap_ns).round() as u64);
        if self.open_t >= self.horizon_ns {
            self.open_rng = None;
            return;
        }
        let app = self.mix.sample(rng);
        let secs = sample_session_secs(rng, &self.arrivals);
        self.open_next = Some((self.open_t, app, (secs * 1e9).round() as u64));
    }

    fn push_dynamic(&mut self, at: u64, req: Request) {
        let slot = match self.dyn_free.pop() {
            Some(s) => {
                self.dyn_slots[s as usize] = Some(req);
                s
            }
            None => {
                let s = self.dyn_slots.len() as u32;
                self.dyn_slots.push(Some(req));
                s
            }
        };
        let order = self.dyn_order;
        self.dyn_order += 1;
        self.dyn_heap.push(Reverse((at, order, slot)));
    }

    /// Earliest pending internal arrival time, without popping.
    fn peek_time(&self) -> Option<u64> {
        let open_t = self.open_next.as_ref().map(|(t, _, _)| *t);
        let join_t = self.joins.get(self.join_cursor).map(|j| j.0);
        let dyn_t = self.dyn_heap.peek().map(|Reverse((t, _, _))| *t);
        [open_t, join_t, dyn_t].into_iter().flatten().min()
    }

    fn next(&mut self) -> Option<(u64, Request)> {
        // Class keys: 0 = open arrival, 1 = client first join, 2 = dynamic.
        let open_t = self.open_next.as_ref().map(|(t, _, _)| *t);
        let join_t = self.joins.get(self.join_cursor).map(|j| j.0);
        let dyn_t = self.dyn_heap.peek().map(|Reverse((t, _, _))| *t);
        let best = [(open_t, 0u8), (join_t, 1), (dyn_t, 2)]
            .into_iter()
            .filter_map(|(t, class)| t.map(|t| (t, class)))
            .min()?;
        match best.1 {
            0 => {
                let (t, app, duration_ns) = self.open_next.take().expect("open candidate");
                self.advance_open();
                Some((
                    t,
                    Request {
                        app,
                        duration_ns,
                        client: None,
                        parked: false,
                        resume: None,
                    },
                ))
            }
            1 => {
                let (t, c, app, duration_ns) = self.joins[self.join_cursor].clone();
                self.join_cursor += 1;
                Some((
                    t,
                    Request {
                        app,
                        duration_ns,
                        client: Some(c),
                        parked: false,
                        resume: None,
                    },
                ))
            }
            _ => {
                let Reverse((t, _, slot)) = self.dyn_heap.pop().expect("dyn candidate");
                let req = self.dyn_slots[slot as usize].take().expect("live dyn slot");
                self.dyn_free.push(slot);
                Some((t, req))
            }
        }
    }
}

struct EngineState<'a> {
    eng: &'a FleetEngine,
    eps: u64,
    horizon_ns: u64,
    tree: SeedTree,
    srv: Vec<Srv>,
    group_range: Vec<(usize, usize)>,
    shard_of_group: Vec<usize>,
    segs: Vec<Seg>,
    shards: ShardedQueues<ShardEvent>,
    source: ArrivalSource,
    client_rngs: Vec<rand::rngs::SmallRng>,
    /// Active servers with a free slot at the current epoch — an exact
    /// superset filter for the first-fit fast path.
    free_now: BTreeSet<usize>,
    resident: Vec<usize>,
    /// Migration-created segments that start in a future epoch, keyed by
    /// (start_epoch, server, segment). The segment rides along so a pop
    /// can skip entries whose segment a crash voided in the meantime.
    future_starts: BinaryHeap<Reverse<(u64, usize, u32)>>,
    cur_epoch: u64,
    conc_delta: Vec<i64>,
    next_session: u64,
    fast_first_fit: bool,
    // counters
    offered: u64,
    rejected: u64,
    queued: u64,
    retried: u64,
    expired: u64,
    dropped: u64,
    queue_len: usize,
    peak_queue: usize,
    migrations: u64,
    migration_evals: u64,
    grow_events: u64,
    shrink_events: u64,
    min_active: usize,
    max_active: usize,
    event_drain: Vec<(SimTime, usize, ShardEvent)>,
    /// The normalized fault plan: `None` when unset *or empty*, so every
    /// fault branch below is cold on a fault-free run.
    faults: Option<&'a FaultPlan>,
    /// Pending fault ops keyed by (epoch, sequence); payloads live in
    /// `fault_payload[seq]`. Sequence order — materialization order, then
    /// runtime push order — breaks same-epoch ties deterministically.
    fault_heap: BinaryHeap<Reverse<(u64, u64)>>,
    fault_payload: Vec<(usize, FaultOp)>,
    /// The fault ledger (reported as [`FaultStats`]).
    fl: FaultStats,
    /// Per-server brownout windows `(start, end, rtt_factor, jitter_ms)`.
    net_windows: Vec<Vec<(u64, u64, f64, f64)>>,
    /// Per-server capacity changes `(epoch, new MiB)` in epoch order.
    capacity_steps: Vec<Vec<(u64, u64)>>,
    /// Per-server extra carve boundaries (degradation steps and brownout
    /// edges), so every data-plane job sees one constant fault state.
    fault_cuts: Vec<Vec<u64>>,
}

impl<'a> EngineState<'a> {
    fn new(eng: &'a FleetEngine) -> Self {
        let eps = eng.epoch.as_nanos();
        let horizon_ns = eps.saturating_mul(eng.epochs);
        let tree = SeedTree::new(eng.seed);
        let shard_count = eng.shards.min(eng.groups.len());
        let mut srv = Vec::with_capacity(eng.total_servers());
        let mut group_range = Vec::with_capacity(eng.groups.len());
        for (g, group) in eng.groups.iter().enumerate() {
            let base = srv.len();
            // With autoscaling, each group starts at its floor and grows on
            // demand; otherwise the whole fleet is up for the whole run.
            let initially_active = match &eng.autoscale {
                Some(a) => a.min_active_per_group.min(group.servers),
                None => group.servers,
            };
            for i in 0..group.servers {
                let active = i < initially_active;
                srv.push(Srv {
                    group: g,
                    gpu_capacity_mib: group.config.server.gpu_memory_mib,
                    status: if active {
                        Status::Active
                    } else {
                        Status::Inactive
                    },
                    health: Health::Healthy,
                    health_since: 0,
                    live: Vec::new(),
                    activity: if active {
                        vec![(0, u64::MAX)]
                    } else {
                        Vec::new()
                    },
                });
            }
            group_range.push((base, srv.len()));
        }
        let active_count = srv.iter().filter(|s| s.status == Status::Active).count();
        let free_now: BTreeSet<usize> = srv
            .iter()
            .enumerate()
            .filter(|(_, s)| s.status == Status::Active)
            .map(|(i, _)| i)
            .collect();
        let total = srv.len();
        let mut shards = ShardedQueues::new(shard_count);
        let shard_of_group: Vec<usize> = (0..eng.groups.len()).map(|g| g % shard_count).collect();
        // Seed the per-group autoscale ticks.
        if let Some(a) = &eng.autoscale {
            if a.eval_every_epochs < eng.epochs {
                for (g, &shard) in shard_of_group.iter().enumerate() {
                    shards.schedule(
                        shard,
                        SimTime::from_nanos(a.eval_every_epochs.saturating_mul(eps)),
                        ShardEvent::GroupTick { group: g },
                    );
                }
            }
        }
        // Pre-draw client first joins, in client order (replay's push
        // order), then sort stably by time so equal-time joins keep it.
        let closed = eng.arrivals.closed_clients * total;
        let mut client_rngs: Vec<_> = (0..closed)
            .map(|c| tree.stream_indexed("client-", c as u64))
            .collect();
        let mut source = ArrivalSource::new(eng, &tree, horizon_ns);
        for (c, rng) in client_rngs.iter_mut().enumerate() {
            let at = (exponential(rng, eng.arrivals.mean_think_secs.max(1e-3) * 1e9 / 2.0)).round()
                as u64;
            if at >= horizon_ns {
                continue;
            }
            let app = eng.mix.sample(rng);
            let secs = sample_session_secs(rng, &eng.arrivals);
            source.joins.push((at, c, app, (secs * 1e9).round() as u64));
        }
        source.joins.sort_by_key(|j| j.0);
        // Normalize the fault plan (empty ⇒ None) and materialize its
        // injection schedule up front: the heap is a pure function of
        // (plan, seed, fleet shape), independent of threads and shards.
        let faults = eng.faults.as_ref().filter(|p| !p.is_empty());
        let mut fault_heap = BinaryHeap::new();
        let mut fault_payload: Vec<(usize, FaultOp)> = Vec::new();
        if let Some(plan) = faults {
            for ev in plan.materialize(&tree, total, eng.epochs) {
                let op = match ev.kind {
                    FaultKind::Crash {
                        drain_epochs,
                        restart_after_epochs,
                        warmup_epochs,
                    } => {
                        if drain_epochs > 0 {
                            FaultOp::Drain {
                                drain_epochs,
                                restart_after: restart_after_epochs,
                                warmup: warmup_epochs,
                            }
                        } else {
                            FaultOp::Crash {
                                restart_after: restart_after_epochs,
                                warmup: warmup_epochs,
                            }
                        }
                    }
                    FaultKind::GpuDegrade {
                        severity,
                        recover_after_epochs,
                    } => FaultOp::Degrade {
                        severity,
                        recover_after: recover_after_epochs,
                    },
                    FaultKind::NetBrownout {
                        rtt_factor,
                        jitter_ms,
                        duration_epochs,
                    } => FaultOp::Brownout {
                        rtt_factor,
                        jitter_ms,
                        duration: duration_epochs,
                    },
                };
                let seq = fault_payload.len() as u64;
                fault_payload.push((ev.server, op));
                fault_heap.push(Reverse((ev.at_epoch, seq)));
            }
        }
        EngineState {
            eng,
            eps,
            horizon_ns,
            tree,
            srv,
            group_range,
            shard_of_group,
            segs: Vec::new(),
            shards,
            source,
            client_rngs,
            free_now,
            resident: vec![0; total],
            future_starts: BinaryHeap::new(),
            cur_epoch: 0,
            conc_delta: vec![0; eng.epochs as usize + 2],
            next_session: 0,
            fast_first_fit: eng.policy.label() == "first-fit",
            offered: 0,
            rejected: 0,
            queued: 0,
            retried: 0,
            expired: 0,
            dropped: 0,
            queue_len: 0,
            peak_queue: 0,
            migrations: 0,
            migration_evals: 0,
            grow_events: 0,
            shrink_events: 0,
            min_active: active_count,
            max_active: active_count,
            event_drain: Vec::new(),
            faults,
            fault_heap,
            fault_payload,
            fl: FaultStats::default(),
            net_windows: vec![Vec::new(); total],
            capacity_steps: vec![Vec::new(); total],
            fault_cuts: vec![Vec::new(); total],
        }
    }

    // -- bookkeeping helpers ---------------------------------------------

    fn set_free(&mut self, i: usize) {
        if self.srv[i].serving() && self.resident[i] < self.eng.slots_per_server {
            self.free_now.insert(i);
        } else {
            self.free_now.remove(&i);
        }
    }

    /// Span feasibility at the candidate's critical points: its own start
    /// plus every live-segment start inside the span. Occupancy only
    /// *rises* at segment starts, so its span maximum is attained at one
    /// of them — this equals replay's per-epoch whole-span scan.
    fn fits_span(&self, i: usize, start: u64, end: u64, need_mib: u64) -> bool {
        let srv = &self.srv[i];
        if !srv.serving() {
            return false;
        }
        let slots = self.eng.slots_per_server;
        let cap = srv.gpu_capacity_mib;
        let check = |p: u64| {
            let mut n = 0usize;
            let mut mem = need_mib;
            for &si in &srv.live {
                let seg = &self.segs[si as usize];
                if seg.start <= p && p < seg.end {
                    n += 1;
                    mem += seg.app.profile.gpu_memory_mib;
                }
            }
            n < slots && mem <= cap
        };
        if !check(start) {
            return false;
        }
        srv.live.iter().all(|&si| {
            let s = self.segs[si as usize].start;
            !(start < s && s < end) || check(s)
        })
    }

    /// Replay-shaped load snapshots for every server (the slow path for
    /// policies that inspect the whole fleet).
    fn loads(&self, app: &App, start: u64, end: u64) -> Vec<ServerLoad> {
        let need_mib = app.profile.gpu_memory_mib;
        (0..self.srv.len())
            .map(|i| {
                let srv = &self.srv[i];
                let apps: Vec<App> = srv
                    .live
                    .iter()
                    .filter(|&&si| self.segs[si as usize].start <= start)
                    .map(|&si| self.segs[si as usize].app.clone())
                    .collect();
                let used_mib: u64 = apps.iter().map(|a| a.profile.gpu_memory_mib).sum();
                ServerLoad {
                    index: i,
                    fits: self.fits_span(i, start, end, need_mib),
                    sessions: apps.len(),
                    slots: self.eng.slots_per_server,
                    gpu_free_mib: srv.gpu_capacity_mib.saturating_sub(used_mib),
                    cpu_pressure: apps.iter().map(|a| a.profile.cpu_pressure).sum(),
                    gpu_pressure: apps.iter().map(|a| a.profile.gpu_pressure).sum(),
                    apps,
                }
            })
            .collect()
    }

    /// Combined resident pressure on server `i` at epoch `e`.
    fn pressure_at(&self, i: usize, e: u64) -> f64 {
        self.srv[i]
            .live
            .iter()
            .map(|&si| &self.segs[si as usize])
            .filter(|seg| seg.start <= e && e < seg.end)
            .map(|seg| seg.app.profile.cpu_pressure + seg.app.profile.gpu_pressure)
            .sum()
    }

    // -- event handling ---------------------------------------------------

    /// Advances the boundary clock to `target`, processing each epoch's
    /// shard events (merged (time, shard, insertion)) and then its
    /// migration step, one epoch at a time — so every decision at epoch
    /// `e` sees exactly the departures and ticks at or before `e × epoch`,
    /// never future state.
    fn advance_to(&mut self, target: u64) {
        while self.cur_epoch < target {
            let e = self.cur_epoch + 1;
            while let Some(&Reverse((fe, server, si))) = self.future_starts.peek() {
                if fe > e {
                    break;
                }
                self.future_starts.pop();
                // A crash may have voided the segment after it was
                // heap-pushed; a stale entry must not touch occupancy.
                if !self.segs[si as usize].is_void() {
                    self.resident[server] += 1;
                    self.set_free(server);
                }
            }
            let deadline = SimTime::from_nanos(e.saturating_mul(self.eps));
            loop {
                let mut drained = std::mem::take(&mut self.event_drain);
                drained.clear();
                if self.shards.drain_until(deadline, &mut drained) == 0 {
                    self.event_drain = drained;
                    break;
                }
                // Handlers may schedule new events at the same boundary
                // (warm-up 0, tick cascades), so keep draining until quiet.
                for &(time, _, ev) in &drained {
                    self.handle_event(time, ev);
                }
                self.event_drain = drained;
            }
            // Faults fire on the main loop after the boundary's shard
            // events and before migration — cross-group effects (orphan
            // parking, eviction) stay shard- and thread-invariant.
            if self.faults.is_some() {
                self.fault_step(e);
            }
            if self.eng.migration.is_some() && e >= 1 && e + 1 < self.eng.epochs {
                self.migrate(e);
            }
            self.cur_epoch = e;
        }
    }

    fn handle_event(&mut self, time: SimTime, ev: ShardEvent) {
        match ev {
            ShardEvent::Departure { server, seg } => {
                self.srv[server].live.retain(|&si| si != seg);
                self.resident[server] -= 1;
                self.set_free(server);
            }
            ShardEvent::Warm { server } => {
                let e = time.as_nanos() / self.eps;
                self.srv[server].status = Status::Active;
                self.srv[server].activity.push((e, u64::MAX));
                self.set_free(server);
            }
            ShardEvent::GroupTick { group } => self.group_tick(group, time),
        }
    }

    fn group_tick(&mut self, group: usize, time: SimTime) {
        let cfg = self.eng.autoscale.expect("ticks only fire with autoscale");
        let e = time.as_nanos() / self.eps;
        let (lo, hi) = self.group_range[group];
        // Serving servers only: capacity lost to faults (`Down`,
        // `Draining`, `WarmingUp`) must not count in the utilization
        // denominator, so the group backfills crashed machines.
        let active: Vec<usize> = (lo..hi).filter(|&i| self.srv[i].serving()).collect();
        let residents: usize = (lo..hi)
            .map(|i| {
                self.srv[i]
                    .live
                    .iter()
                    .filter(|&&si| {
                        let seg = &self.segs[si as usize];
                        seg.start <= e && e < seg.end
                    })
                    .count()
            })
            .sum();
        let active_slots = active.len() * self.eng.slots_per_server;
        let util = residents as f64 / active_slots.max(1) as f64;
        if util > cfg.high_watermark {
            // Grow: warm the lowest-index spare.
            let warm_epoch = e + cfg.warmup_epochs;
            if warm_epoch < self.eng.epochs {
                if let Some(spare) = (lo..hi).find(|&i| self.srv[i].status == Status::Inactive) {
                    self.srv[spare].status = Status::Warming;
                    self.shards.schedule(
                        self.shard_of_group[group],
                        SimTime::from_nanos(warm_epoch.saturating_mul(self.eps)),
                        ShardEvent::Warm { server: spare },
                    );
                    self.grow_events += 1;
                }
            }
        } else if util < cfg.low_watermark && active.len() > cfg.min_active_per_group {
            // Shrink: retire the highest-index empty server. Occupied
            // servers are never retired — no live session is ever dropped.
            if let Some(&victim) = active.iter().rev().find(|&&i| self.srv[i].live.is_empty()) {
                self.srv[victim].status = Status::Inactive;
                if let Some(last) = self.srv[victim].activity.last_mut() {
                    last.1 = e;
                }
                self.free_now.remove(&victim);
                self.shrink_events += 1;
            }
        }
        let total_active = self.srv.iter().filter(|s| s.serving()).count();
        self.min_active = self.min_active.min(total_active);
        self.max_active = self.max_active.max(total_active);
        let next = e + cfg.eval_every_epochs;
        if next < self.eng.epochs {
            self.shards.schedule(
                self.shard_of_group[group],
                SimTime::from_nanos(next.saturating_mul(self.eps)),
                ShardEvent::GroupTick { group },
            );
        }
    }

    /// One migration evaluation at boundary `e` (main loop, not a shard
    /// event, so its cross-group reads cannot depend on shard count).
    fn migrate(&mut self, e: u64) {
        let threshold = self
            .eng
            .migration
            .expect("checked by caller")
            .pressure_threshold;
        self.migration_evals += 1;
        let mut src: Option<(usize, f64)> = None;
        for i in 0..self.srv.len() {
            if self.srv[i].status != Status::Active {
                continue;
            }
            let p = self.pressure_at(i, e);
            if p > threshold && src.is_none_or(|(_, best)| p > best) {
                src = Some((i, p));
            }
        }
        let Some((src, src_p)) = src else { return };
        // Most contentious movable session: spans the boundary with at
        // least one epoch left after the transfer gap.
        let cand = self.srv[src]
            .live
            .iter()
            .map(|&si| (si, &self.segs[si as usize]))
            .filter(|(_, seg)| seg.start < e && seg.end > e + 1)
            .map(|(si, seg)| {
                let p = seg.app.profile.cpu_pressure + seg.app.profile.gpu_pressure;
                (si, p, seg.session, seg.end)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(b.2.cmp(&a.2)));
        let Some((cand_si, cand_p, _, cand_end)) = cand else {
            return;
        };
        let need = self.segs[cand_si as usize].app.profile.gpu_memory_mib;
        let tgt = (0..self.srv.len())
            .filter(|&i| i != src && self.fits_span(i, e + 1, cand_end, need))
            .map(|i| (i, self.pressure_at(i, e)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
        let Some((tgt, tgt_p)) = tgt else { return };
        // Oscillation guard: only move when the hottest server stays the
        // hottest by a strict margin — the fleet imbalance must shrink.
        if tgt_p + cand_p >= src_p {
            return;
        }
        self.migrations += 1;
        let (session, app, old_end, old_departure) = {
            let seg = &mut self.segs[cand_si as usize];
            let old_end = seg.end;
            seg.end = e;
            (seg.session, seg.app.clone(), old_end, seg.departure)
        };
        self.shards
            .cancel(self.shard_of_group[self.srv[src].group], old_departure);
        self.srv[src].live.retain(|&si| si != cand_si);
        self.resident[src] -= 1;
        self.set_free(src);
        let new_si = self.segs.len() as u32;
        let departure = self.shards.schedule(
            self.shard_of_group[self.srv[tgt].group],
            SimTime::from_nanos(old_end.saturating_mul(self.eps)),
            ShardEvent::Departure {
                server: tgt,
                seg: new_si,
            },
        );
        self.segs.push(Seg {
            session,
            app,
            server: tgt,
            start: e + 1,
            end: old_end,
            departure,
        });
        self.srv[tgt].live.push(new_si);
        self.future_starts.push(Reverse((e + 1, tgt, new_si)));
        // The session is in transfer during epoch `e`: resident nowhere.
        self.conc_delta[e as usize] -= 1;
        self.conc_delta[e as usize + 1] += 1;
    }

    // -- fault injection and recovery -------------------------------------

    /// Queues a fault op for `server` at `epoch`; ops at or past the
    /// horizon are dropped (the finish pass accounts open states to the
    /// horizon instead).
    fn push_fault(&mut self, epoch: u64, server: usize, op: FaultOp) {
        if epoch >= self.eng.epochs {
            return;
        }
        let seq = self.fault_payload.len() as u64;
        self.fault_payload.push((server, op));
        self.fault_heap.push(Reverse((epoch, seq)));
    }

    /// Applies every fault op due at boundary `e`, in (epoch, sequence)
    /// order.
    fn fault_step(&mut self, e: u64) {
        while let Some(&Reverse((fe, seq))) = self.fault_heap.peek() {
            if fe > e {
                break;
            }
            self.fault_heap.pop();
            let (server, op) = self.fault_payload[seq as usize];
            self.apply_fault(e, server, op);
        }
    }

    fn apply_fault(&mut self, e: u64, server: usize, op: FaultOp) {
        match op {
            FaultOp::Drain {
                drain_epochs,
                restart_after,
                warmup,
            } => {
                if !self.srv[server].serving() {
                    self.fl.skipped += 1;
                    return;
                }
                self.fl.crashes += 1;
                self.srv[server].health = Health::Draining;
                self.srv[server].health_since = e;
                self.free_now.remove(&server);
                self.push_fault(
                    e.saturating_add(drain_epochs),
                    server,
                    FaultOp::Crash {
                        restart_after,
                        warmup,
                    },
                );
            }
            FaultOp::Crash {
                restart_after,
                warmup,
            } => {
                // Either an abrupt injection (server must be serving) or
                // the scheduled end of this server's drain window.
                if self.srv[server].health == Health::Draining {
                    self.fl.draining_epochs += e - self.srv[server].health_since;
                } else if self.srv[server].serving() {
                    self.fl.crashes += 1;
                } else {
                    self.fl.skipped += 1;
                    return;
                }
                self.go_down(e, server, restart_after, warmup);
            }
            FaultOp::Restart { warmup } => {
                // Only `Down` servers hold a pending restart.
                self.fl.downtime_epochs += e - self.srv[server].health_since;
                self.srv[server].health = Health::WarmingUp;
                self.srv[server].health_since = e;
                if warmup == 0 {
                    self.apply_fault(e, server, FaultOp::WarmDone);
                } else {
                    self.push_fault(e.saturating_add(warmup), server, FaultOp::WarmDone);
                }
            }
            FaultOp::WarmDone => {
                self.fl.warming_epochs += e - self.srv[server].health_since;
                // Bank retirement survives the reboot: a server that was
                // degraded when it crashed comes back degraded.
                let pristine = self.pristine_mib(server);
                self.srv[server].health = if self.srv[server].gpu_capacity_mib == pristine {
                    Health::Healthy
                } else {
                    Health::Degraded
                };
                self.srv[server].health_since = e;
                self.srv[server].activity.push((e, u64::MAX));
                self.set_free(server);
            }
            FaultOp::Degrade {
                severity,
                recover_after,
            } => {
                if !self.srv[server].serving() {
                    self.fl.skipped += 1;
                    return;
                }
                self.fl.gpu_degrades += 1;
                let new_cap = pictor_hw::degrade_mib(self.srv[server].gpu_capacity_mib, severity);
                self.srv[server].gpu_capacity_mib = new_cap;
                self.capacity_steps[server].push((e, new_cap));
                self.fault_cuts[server].push(e);
                if self.srv[server].health == Health::Healthy {
                    self.srv[server].health = Health::Degraded;
                    self.srv[server].health_since = e;
                }
                self.evict_to_capacity(e, server);
                self.set_free(server);
                if let Some(r) = recover_after {
                    self.push_fault(e.saturating_add(r), server, FaultOp::DegradeRecover);
                }
            }
            FaultOp::DegradeRecover => {
                let pristine = self.pristine_mib(server);
                if self.srv[server].gpu_capacity_mib == pristine {
                    return;
                }
                self.srv[server].gpu_capacity_mib = pristine;
                self.capacity_steps[server].push((e, pristine));
                self.fault_cuts[server].push(e);
                if self.srv[server].health == Health::Degraded {
                    self.srv[server].health = Health::Healthy;
                    self.srv[server].health_since = e;
                }
                self.set_free(server);
            }
            FaultOp::Brownout {
                rtt_factor,
                jitter_ms,
                duration,
            } => {
                // Brownouts degrade quality, not placement: they apply to
                // whatever the server hosts while the window lasts.
                self.fl.brownouts += 1;
                let end = e.saturating_add(duration).min(self.eng.epochs);
                self.net_windows[server].push((e, end, rtt_factor, jitter_ms));
                self.fault_cuts[server].push(e);
                if end < self.eng.epochs {
                    self.fault_cuts[server].push(end);
                }
            }
        }
    }

    /// The group-config capacity `server` started the run with.
    fn pristine_mib(&self, server: usize) -> u64 {
        self.eng.groups[self.srv[server].group]
            .config
            .server
            .gpu_memory_mib
    }

    /// Effective GPU capacity of `server` at epoch `e`: pristine until the
    /// last recorded degradation/restoration step at or before `e`.
    fn capacity_at(&self, server: usize, e: u64) -> u64 {
        let mut cap = self.pristine_mib(server);
        for &(at, c) in &self.capacity_steps[server] {
            if at <= e {
                cap = c;
            } else {
                break;
            }
        }
        cap
    }

    /// Crash landing: orphan every resident, close the activity window,
    /// mark the server `Down` and (optionally) queue its restart.
    fn go_down(&mut self, e: u64, server: usize, restart_after: Option<u64>, warmup: u64) {
        let live: Vec<u32> = self.srv[server].live.clone();
        let mut orphans: Vec<(u64, App, u64)> = Vec::with_capacity(live.len());
        for si in live {
            if let Some(orphan) = self.detach_seg(e, server, si) {
                orphans.push(orphan);
            }
        }
        self.fl.orphaned += orphans.len() as u64;
        self.srv[server].health = Health::Down;
        self.srv[server].health_since = e;
        if let Some(last) = self.srv[server].activity.last_mut() {
            if last.1 == u64::MAX {
                last.1 = e;
            }
        }
        self.free_now.remove(&server);
        for (session, app, remaining) in orphans {
            self.orphan_session(e, session, app, remaining);
        }
        if let Some(r) = restart_after {
            self.push_fault(e.saturating_add(r), server, FaultOp::Restart { warmup });
        }
    }

    /// Detaches segment `si` from `server` at epoch `e` (crash or
    /// eviction): cancels its departure, truncates it to `e` (or voids it
    /// entirely when it had not started), fixes occupancy, and returns the
    /// orphan payload `(session, app, remaining epochs)` when any service
    /// was actually lost.
    fn detach_seg(&mut self, e: u64, server: usize, si: u32) -> Option<(u64, App, u64)> {
        let (departure, start, old_end, session, app) = {
            let seg = &self.segs[si as usize];
            (
                seg.departure,
                seg.start,
                seg.end,
                seg.session,
                seg.app.clone(),
            )
        };
        self.shards
            .cancel(self.shard_of_group[self.srv[server].group], departure);
        if start <= e {
            self.segs[si as usize].end = e;
            self.resident[server] -= 1;
            self.conc_delta[e as usize] -= 1;
            self.conc_delta[old_end as usize] += 1;
        } else {
            // A migration-created segment that never started: void it in
            // place (its stale `future_starts` entry checks `is_void`).
            self.segs[si as usize].end = start;
            self.conc_delta[start as usize] -= 1;
            self.conc_delta[old_end as usize] += 1;
        }
        self.srv[server].live.retain(|&x| x != si);
        self.set_free(server);
        let cut = e.max(start);
        (old_end > cut).then(|| (session, app, old_end - cut))
    }

    /// Evicts residents (in [`VictimPolicy`](super::VictimPolicy) order)
    /// until the server's occupancy fits its shrunken capacity at every
    /// remaining epoch.
    fn evict_to_capacity(&mut self, e: u64, server: usize) {
        let plan = self.faults.expect("eviction only happens with faults");
        loop {
            let cap = self.srv[server].gpu_capacity_mib;
            let viol = (e..self.eng.epochs).find(|&p| {
                let mem: u64 = self.srv[server]
                    .live
                    .iter()
                    .map(|&si| &self.segs[si as usize])
                    .filter(|seg| !seg.is_void() && seg.start <= p && p < seg.end)
                    .map(|seg| seg.app.profile.gpu_memory_mib)
                    .sum();
                mem > cap
            });
            let Some(p) = viol else { break };
            let cands: Vec<(u32, VictimCandidate)> = self.srv[server]
                .live
                .iter()
                .map(|&si| (si, &self.segs[si as usize]))
                .filter(|(_, seg)| !seg.is_void() && seg.start <= p && p < seg.end)
                .map(|(si, seg)| {
                    (
                        si,
                        VictimCandidate {
                            session: seg.session,
                            gpu_mib: seg.app.profile.gpu_memory_mib,
                            remaining_epochs: seg.end - seg.start.max(e),
                            pressure: seg.app.profile.cpu_pressure + seg.app.profile.gpu_pressure,
                        },
                    )
                })
                .collect();
            let Some(_) = cands.first() else { break };
            let snapshot: Vec<VictimCandidate> = cands.iter().map(|&(_, c)| c).collect();
            let pick = plan.victims.pick(&snapshot);
            assert!(
                pick < cands.len(),
                "victim policy {} returned out-of-range index {pick} over {} candidates",
                plan.victims.label(),
                cands.len()
            );
            let si = cands[pick].0;
            if let Some((session, app, remaining)) = self.detach_seg(e, server, si) {
                self.fl.evicted += 1;
                self.orphan_session(e, session, app, remaining);
            }
        }
    }

    /// Re-enters an orphaned/evicted session into placement through the
    /// shared pending queue, or counts it lost when the queue is full.
    fn orphan_session(&mut self, e: u64, session: u64, app: App, remaining_epochs: u64) {
        let plan = self.faults.expect("orphans only exist with faults");
        let limit = self
            .eng
            .backpressure
            .as_ref()
            .map(|b| b.queue_limit)
            .unwrap_or(plan.recovery.queue_limit);
        if self.queue_len >= limit {
            self.fl.lost += 1;
            return;
        }
        let now_ns = e.saturating_mul(self.eps);
        let retry_at = self.recovery_retry_at(now_ns, 0, session);
        self.park(
            retry_at,
            Request {
                app,
                duration_ns: remaining_epochs.saturating_mul(self.eps),
                client: None,
                parked: false,
                resume: Some(Resume {
                    session,
                    attempt: 0,
                    orphaned_at: e,
                }),
            },
        );
    }

    /// Recovery retry time: exponential backoff capped at the configured
    /// ceiling, plus a deterministic sub-epoch jitter hashed from (seed,
    /// session, attempt) — so backed-off orphans never stampede one
    /// boundary, and reruns reproduce the schedule exactly.
    fn recovery_retry_at(&self, now_ns: u64, attempt: u32, session: u64) -> u64 {
        let rec = &self.faults.expect("recovery needs a plan").recovery;
        let backoff = rec
            .base_retry_epochs
            .saturating_mul(1u64 << attempt.min(62))
            .min(rec.max_backoff_epochs);
        let jitter =
            mix64(self.eng.seed ^ session.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(attempt))
                % self.eps.max(1);
        now_ns
            .saturating_add(backoff.saturating_mul(self.eps))
            .saturating_add(jitter)
    }

    // -- the online loop --------------------------------------------------

    /// Offers one request to the control plane at time `t`: advances the
    /// boundary clock, runs placement, and admits, parks or rejects. This
    /// is the whole per-arrival step of the online loop — `run()` drives it
    /// from the internal [`ArrivalSource`], [`LiveFleet`] from external
    /// callers — so both paths are the same code byte for byte.
    fn process_request(&mut self, t: u64, req: Request) -> Admission {
        let start = t.div_ceil(self.eps);
        if start >= self.eng.epochs {
            if req.parked {
                self.queue_len -= 1;
                match req.resume {
                    Some(_) => self.fl.lost += 1,
                    None => self.expired += 1,
                }
            }
            // Mirrors replay: past-horizon requests vanish silently —
            // no offer, no draws.
            return Admission::PastHorizon;
        }
        self.advance_to(start);
        let span = (req.duration_ns as f64 / self.eps as f64).round().max(1.0) as u64;
        let end = (start + span).min(self.eng.epochs);
        // Recovery re-placements live in the fault ledger, not the
        // admission ledger — `offered == admitted + rejected + queued`
        // holds with or without a fault plan.
        match req.resume {
            Some(_) => self.fl.recovery_retries += 1,
            None => {
                self.offered += 1;
                if req.parked {
                    self.retried += 1;
                }
            }
        }
        if req.parked {
            self.queue_len -= 1;
        }
        let need_mib = req.app.profile.gpu_memory_mib;
        let choice = if self.fast_first_fit {
            // Exact first-fit without building load snapshots:
            // `free_now` only ever omits servers whose slot count
            // already fails at the start epoch.
            self.free_now
                .iter()
                .copied()
                .find(|&i| self.fits_span(i, start, end, need_mib))
        } else {
            let loads = self.loads(&req.app, start, end);
            self.eng
                .policy
                .place(&req.app, &loads)
                .filter(|&s| s < self.srv.len() && loads[s].fits)
        };
        match choice {
            Some(server) => {
                let session = self.admit(server, start, end, t, req);
                Admission::Admitted {
                    session,
                    server,
                    start_epoch: start,
                    end_epoch: end,
                }
            }
            None => self.refuse(t, req),
        }
    }

    fn admit(&mut self, server: usize, start: u64, end: u64, _t: u64, req: Request) -> u64 {
        let id = match req.resume {
            Some(r) => {
                // A recovered session keeps its identity; its new segment
                // covers only the service it still had left.
                self.fl.recovered += 1;
                self.fl.recovery_latency_epochs += start.saturating_sub(r.orphaned_at);
                r.session
            }
            None => {
                let id = self.next_session;
                self.next_session += 1;
                id
            }
        };
        let si = self.segs.len() as u32;
        let departure = self.shards.schedule(
            self.shard_of_group[self.srv[server].group],
            SimTime::from_nanos(end.saturating_mul(self.eps)),
            ShardEvent::Departure { server, seg: si },
        );
        self.segs.push(Seg {
            session: id,
            app: req.app,
            server,
            start,
            end,
            departure,
        });
        self.srv[server].live.push(si);
        self.resident[server] += 1;
        self.set_free(server);
        self.conc_delta[start as usize] += 1;
        self.conc_delta[end as usize] -= 1;
        if let Some(c) = req.client {
            let rng = &mut self.client_rngs[c];
            let think =
                exponential(rng, self.eng.arrivals.mean_think_secs.max(1e-3) * 1e9).round() as u64;
            let rejoin = end.saturating_mul(self.eps).saturating_add(think);
            if rejoin < self.horizon_ns {
                let app = self.eng.mix.sample(rng);
                let secs = sample_session_secs(rng, &self.eng.arrivals);
                self.source.push_dynamic(
                    rejoin,
                    Request {
                        app,
                        duration_ns: (secs * 1e9).round() as u64,
                        client: Some(c),
                        parked: false,
                        resume: None,
                    },
                );
            }
        }
        id
    }

    fn refuse(&mut self, t: u64, req: Request) -> Admission {
        if let Some(r) = req.resume {
            // Fault recovery: back off and retry until attempts run out or
            // the shared queue fills.
            let plan = self.faults.expect("resume requests imply a fault plan");
            let limit = self
                .eng
                .backpressure
                .as_ref()
                .map(|b| b.queue_limit)
                .unwrap_or(plan.recovery.queue_limit);
            if r.attempt + 1 < plan.recovery.max_attempts && self.queue_len < limit {
                let retry_at = self.recovery_retry_at(t, r.attempt + 1, r.session);
                self.park(
                    retry_at,
                    Request {
                        resume: Some(Resume {
                            attempt: r.attempt + 1,
                            ..r
                        }),
                        ..req
                    },
                );
                return Admission::Parked;
            }
            self.fl.lost += 1;
            return Admission::Rejected;
        }
        if let Some(bp) = &self.eng.backpressure {
            if self.queue_len < bp.queue_limit {
                // Park: same request, retried later, no RNG draws. The
                // epoch-to-nanosecond product saturates (`checked_mul`) so
                // an enormous retry-after cannot wrap around the horizon
                // comparison inside `park`.
                let retry_at = t.saturating_add(bp.retry_after_epochs.saturating_mul(self.eps));
                self.park(retry_at, req);
                return Admission::Parked;
            }
            self.dropped += 1;
        }
        self.rejected += 1;
        if let Some(c) = req.client {
            let rng = &mut self.client_rngs[c];
            let think =
                exponential(rng, self.eng.arrivals.mean_think_secs.max(1e-3) * 1e9).round() as u64;
            let retry = t.saturating_add(think);
            if retry < self.horizon_ns {
                let app = self.eng.mix.sample(rng);
                let secs = sample_session_secs(rng, &self.eng.arrivals);
                self.source.push_dynamic(
                    retry,
                    Request {
                        app,
                        duration_ns: (secs * 1e9).round() as u64,
                        client: Some(c),
                        parked: false,
                        resume: None,
                    },
                );
            }
        }
        Admission::Rejected
    }

    /// Parks a request for a later retry, sharing the bounded queue between
    /// admission backpressure and fault recovery. The horizon rule is the
    /// same strict `< horizon_ns` that think-time rejoins use: a retry at or
    /// past the horizon can never be offered again, so it expires at park
    /// time and never occupies a queue slot. Backpressure parks count in
    /// the admission ledger (`queued`/`expired`); recovery parks count in
    /// the fault ledger (`lost`).
    fn park(&mut self, retry_at: u64, req: Request) {
        let recovery = req.resume.is_some();
        if !recovery {
            self.queued += 1;
        }
        if retry_at >= self.horizon_ns {
            if recovery {
                self.fl.lost += 1;
            } else {
                self.expired += 1;
            }
            return;
        }
        self.queue_len += 1;
        self.peak_queue = self.peak_queue.max(self.queue_len);
        self.source.push_dynamic(
            retry_at,
            Request {
                parked: true,
                ..req
            },
        );
    }

    // -- data plane + reduction ------------------------------------------

    fn finish(mut self, threads: usize) -> (FleetReport, FleetAudit) {
        let eng = self.eng;
        let epochs = eng.epochs;
        // Close the books: open activity windows end at the horizon.
        for s in &mut self.srv {
            if let Some(last) = s.activity.last_mut() {
                if last.1 == u64::MAX {
                    last.1 = epochs;
                }
            }
        }
        if self.faults.is_some() {
            // Unresolved health states account their spans to the horizon,
            // and fault cuts become sorted sets for the carve below.
            for s in &self.srv {
                let span = epochs - s.health_since;
                match s.health {
                    Health::Down => self.fl.downtime_epochs += span,
                    Health::WarmingUp => self.fl.warming_epochs += span,
                    Health::Draining => self.fl.draining_epochs += span,
                    Health::Healthy | Health::Degraded => {}
                }
            }
            for cuts in &mut self.fault_cuts {
                cuts.sort_unstable();
                cuts.dedup();
            }
        }
        // Per-server segment history, in admission order.
        let mut by_server: Vec<Vec<u32>> = vec![Vec::new(); self.srv.len()];
        for (i, seg) in self.segs.iter().enumerate() {
            by_server[seg.server].push(i as u32);
        }

        let mut fps = TailQuantiles::new();
        let mut rtt = TailQuantiles::new();
        let mut fps_violations = 0u64;
        let mut rtt_violations = 0u64;
        let mut fault_rtt_viol = 0u64;
        let mut session_epochs = 0u64;
        let mut tracked_inputs = 0u64;

        // Carve each server's timeline into maximal constant-set
        // occupancy intervals (replay's partition) and run the data plane
        // over server chunks: job order — hence the reduction stream and
        // the P² states — is server-major regardless of chunking, threads
        // or shards. Fault cuts (degradation steps and brownout edges)
        // force interval boundaries so each job sees one capacity and one
        // network impairment.
        struct Job {
            server: usize,
            start: u64,
            end: u64,
            segs: Vec<u32>,
            /// Set when degraded capacity requires a config override.
            config: Option<SystemConfig>,
        }
        let net_windows = &self.net_windows;
        let mut reduce = |job: &Job, result: &IntervalResult| {
            for epoch_fps in &result.fps {
                for &f in epoch_fps {
                    session_epochs += 1;
                    fps.record(f);
                    if f < eng.slo.min_fps {
                        fps_violations += 1;
                    }
                }
            }
            // Effective brownout impairment for this job — constant across
            // it because the carve cuts at window edges; overlapping
            // windows take the worst factor and jitter.
            let mut factor = 1.0f64;
            let mut jitter = 0.0f64;
            for &(s, t, f, j) in &net_windows[job.server] {
                if s <= job.start && job.start < t {
                    factor = factor.max(f);
                    jitter = jitter.max(j);
                }
            }
            if factor > 1.0 || jitter > 0.0 {
                let mut k = 0u64;
                for samples in &result.rtt_ms {
                    for &ms in samples {
                        let h = mix64(
                            eng.seed ^ (job.server as u64) << 40 ^ job.start << 20 ^ 0xb10c ^ k,
                        );
                        k += 1;
                        let u = h as f64 / u64::MAX as f64;
                        let inflated = ms * factor + jitter * u;
                        rtt.record(inflated);
                        if inflated > eng.slo.max_rtt_ms {
                            rtt_violations += 1;
                            if ms <= eng.slo.max_rtt_ms {
                                // Would have met the SLO on a healthy path.
                                fault_rtt_viol += 1;
                            }
                        }
                    }
                    tracked_inputs += samples.len() as u64;
                }
            } else {
                for samples in &result.rtt_ms {
                    for &ms in samples {
                        rtt.record(ms);
                        if ms > eng.slo.max_rtt_ms {
                            rtt_violations += 1;
                        }
                    }
                    tracked_inputs += samples.len() as u64;
                }
            }
        };

        let mut occ: Vec<Vec<u32>> = vec![Vec::new(); epochs as usize];
        for chunk in (0..self.srv.len()).collect::<Vec<_>>().chunks(32) {
            let mut jobs: Vec<Job> = Vec::new();
            for &server in chunk {
                for o in &mut occ {
                    o.clear();
                }
                for &si in &by_server[server] {
                    let seg = &self.segs[si as usize];
                    for e in seg.start..seg.end {
                        occ[e as usize].push(si);
                    }
                }
                let cuts = &self.fault_cuts[server];
                let mut e = 0usize;
                while e < epochs as usize {
                    if occ[e].is_empty() {
                        e += 1;
                        continue;
                    }
                    let mut end = e + 1;
                    while end < epochs as usize
                        && occ[end] == occ[e]
                        && cuts.binary_search(&(end as u64)).is_err()
                    {
                        end += 1;
                    }
                    let cap = self.capacity_at(server, e as u64);
                    let config = (cap != self.pristine_mib(server)).then(|| {
                        let mut c = eng.groups[self.srv[server].group].config.clone();
                        c.server.gpu_memory_mib = cap;
                        c
                    });
                    jobs.push(Job {
                        server,
                        start: e as u64,
                        end: end as u64,
                        segs: occ[e].clone(),
                        config,
                    });
                    e = end;
                }
            }
            let segs = &self.segs;
            let tree = &self.tree;
            let srv = &self.srv;
            let results = crate::suite::run_pool(jobs.len(), threads, |j| {
                let job = &jobs[j];
                let config = job
                    .config
                    .as_ref()
                    .unwrap_or(&eng.groups[srv[job.server].group].config);
                let sessions: Vec<(u64, &App)> = job
                    .segs
                    .iter()
                    .map(|&si| (segs[si as usize].session, &segs[si as usize].app))
                    .collect();
                match eng.data_plane {
                    DataPlane::Simulated => simulate_interval(
                        config, tree, job.server, job.start, job.end, &sessions, eng.warmup,
                        eng.epoch,
                    ),
                    DataPlane::Surrogate => surrogate_interval(
                        config, eng.seed, job.server, job.start, job.end, &sessions,
                    ),
                }
            });
            for (job, result) in jobs.iter().zip(&results) {
                reduce(job, result);
            }
        }
        self.fl.fault_rtt_violations = fault_rtt_viol;

        let total = self.srv.len();
        let occupied: u64 = self.segs.iter().map(|s| s.end - s.start).sum();
        let active_slot_epochs: u64 = self
            .srv
            .iter()
            .flat_map(|s| s.activity.iter())
            .map(|&(a, b)| (b - a) * eng.slots_per_server as u64)
            .sum();
        // With autoscale or faults, only epochs a server was actually
        // serving count as offered capacity (downtime and warm-up are
        // excluded — faults must not deflate utilization for capacity the
        // fleet never had).
        let slot_epochs = if eng.autoscale.is_some() || self.faults.is_some() {
            active_slot_epochs
        } else {
            (total * eng.slots_per_server) as u64 * epochs
        };
        let mut peak = 0i64;
        let mut running = 0i64;
        for e in 0..epochs as usize {
            running += self.conc_delta[e];
            peak = peak.max(running);
        }
        let dynamics = if eng.autoscale.is_some()
            || eng.migration.is_some()
            || eng.backpressure.is_some()
            || self.faults.is_some()
        {
            Some(FleetDynamics {
                autoscale: eng.autoscale.map(|_| AutoscaleStats {
                    grow_events: self.grow_events,
                    shrink_events: self.shrink_events,
                    min_active_servers: self.min_active,
                    max_active_servers: self.max_active,
                    active_slot_epochs,
                }),
                migration: eng.migration.map(|_| MigrationStats {
                    evaluations: self.migration_evals,
                    migrations: self.migrations,
                }),
                backpressure: eng.backpressure.map(|_| BackpressureStats {
                    queued: self.queued,
                    retried: self.retried,
                    expired: self.expired,
                    dropped: self.dropped,
                    peak_queue: self.peak_queue,
                }),
                faults: self.faults.map(|_| self.fl),
            })
        } else {
            None
        };
        let report = FleetReport {
            servers: total,
            slots_per_server: eng.slots_per_server,
            epochs,
            epoch: eng.epoch,
            policy: eng.policy.label().to_string(),
            arrivals: eng.arrivals.label.clone(),
            seed: eng.seed,
            offered: self.offered,
            admitted: self.next_session,
            rejected: self.rejected,
            peak_sessions: peak as usize,
            utilization: occupied as f64 / slot_epochs as f64,
            session_epochs,
            tracked_inputs,
            fps,
            rtt,
            slo: eng.slo,
            fps_violations,
            rtt_violations,
            dynamics,
        };
        let audit = FleetAudit {
            offered: self.offered,
            admitted: self.next_session,
            rejected: self.rejected,
            queued: self.queued,
            retried: self.retried,
            expired: self.expired,
            dropped: self.dropped,
            migrations: self.migrations,
            peak_queue: self.peak_queue,
            slots_per_server: eng.slots_per_server,
            placements: self
                .segs
                .iter()
                .filter(|s| !s.is_void())
                .map(|s| Placement {
                    session: s.session,
                    server: s.server,
                    start_epoch: s.start,
                    end_epoch: s.end,
                    gpu_mib: s.app.profile.gpu_memory_mib,
                })
                .collect(),
            gpu_capacity_mib: (0..self.srv.len()).map(|i| self.pristine_mib(i)).collect(),
            capacity_steps: self.capacity_steps.clone(),
            activity: self.srv.iter().map(|s| s.activity.clone()).collect(),
            orphaned: self.fl.orphaned,
            evicted: self.fl.evicted,
            recovered: self.fl.recovered,
            lost: self.fl.lost,
        };
        (report, audit)
    }
}

// ---------------------------------------------------------------------------
// surrogate data plane
// ---------------------------------------------------------------------------

/// SplitMix64 — the deterministic jitter source for surrogate RTT samples.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Closed-form data plane: the paper's contention model evaluated once per
/// interval, FPS from the slower of the contended CPU and GPU stages, RTT
/// as the pipeline sum with instance-count IPC inflation, two
/// hash-jittered samples per session-epoch. Pure in (config, seed, server,
/// interval, session set) — thread- and shard-invariant by construction.
fn surrogate_interval(
    config: &SystemConfig,
    seed: u64,
    server: usize,
    start: u64,
    end: u64,
    sessions: &[(u64, &App)],
) -> IntervalResult {
    let mut by_id: Vec<&(u64, &App)> = sessions.iter().collect();
    by_id.sort_by_key(|(id, _)| *id);
    let n = by_id.len();
    let tuning = &config.tuning;
    let profiles: Vec<_> = by_id.iter().map(|(_, app)| &app.profile).collect();
    let mults = vec![1.0; n];
    let states = contention_states(&profiles, tuning, &mults);
    let ipc = 1.0 + tuning.ipc_slope * (n as f64 - 1.0);
    let gpu = config.server.gpu_throughput;
    let mut per_session_fps = Vec::with_capacity(n);
    let mut rtt_base = Vec::with_capacity(n);
    for (st, p) in states.iter().zip(&profiles) {
        let al_eff = p.al_base_ms / st.app_speed;
        let rd_eff = p.rd_base_ms * st.rd_cost_mult / gpu;
        per_session_fps.push(1000.0 / al_eff.max(rd_eff));
        rtt_base.push(
            tuning.sp_ms
                + tuning.ps_base_ms * ipc
                + al_eff
                + rd_eff
                + tuning.as_base_ms * ipc
                + tuning.decode_ms,
        );
    }
    let span = (end - start) as usize;
    let fps = (0..span).map(|_| per_session_fps.clone()).collect();
    let rtt_ms = by_id
        .iter()
        .enumerate()
        .map(|(i, (id, _))| {
            let mut samples = Vec::with_capacity(span * 2);
            for e in start..end {
                for k in 0..2u64 {
                    let h = mix64(
                        seed ^ (server as u64) << 40 ^ e << 20 ^ id.wrapping_mul(0x1_0001) ^ k,
                    );
                    let u = h as f64 / u64::MAX as f64;
                    samples.push(rtt_base[i] * (0.85 + 0.3 * u));
                }
            }
            samples
        })
        .collect();
    IntervalResult { fps, rtt_ms }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{mix, tiny_spec};
    use super::*;
    use super::{DataPlane, FleetEngine, GroupSpec};

    fn surrogate_engine(policy: Arc<dyn PlacementPolicy>) -> FleetEngine {
        let base = SystemConfig::turbovnc_stock();
        let spec = FleetSpec::new(6, mix(), policy, 77).epochs(12);
        let mut eng = FleetEngine::from_spec(&spec);
        eng.groups = vec![
            GroupSpec::with_gpu(3, &base, GpuModel::Gtx1080Ti),
            GroupSpec::with_gpu(3, &base, GpuModel::TeslaT4),
        ];
        eng.data_plane = DataPlane::Surrogate;
        eng.arrivals = ArrivalConfig::saturating();
        eng
    }

    #[test]
    fn static_engine_matches_replay_metrics() {
        let spec = tiny_spec(Arc::new(super::super::FirstFit));
        let replay = spec.run_with_threads(2);
        let engine = FleetEngine::from_spec(&spec).run_with_threads(2);
        assert_eq!(replay.metrics(), engine.metrics());
        assert!(engine.dynamics.is_none());
    }

    #[test]
    fn static_engine_matches_replay_for_fleetwide_policies() {
        let spec = tiny_spec(Arc::new(super::super::LeastContended));
        assert_eq!(
            spec.run_with_threads(1).metrics(),
            FleetEngine::from_spec(&spec).run_with_threads(1).metrics()
        );
    }

    #[test]
    fn surrogate_plane_is_deterministic_and_finite() {
        let a = surrogate_engine(Arc::new(super::super::FirstFit)).run_with_threads(2);
        let b = surrogate_engine(Arc::new(super::super::FirstFit)).run_with_threads(4);
        assert_eq!(a.metrics(), b.metrics());
        assert!(a.admitted > 0);
        assert!(a.non_finite_paths().is_empty());
        assert!(a.rtt.p99() >= a.rtt.p50());
    }

    #[test]
    fn shard_count_does_not_change_the_report() {
        let mut one = surrogate_engine(Arc::new(super::super::FirstFit));
        one.autoscale = Some(AutoscaleConfig::steady());
        one.backpressure = Some(BackpressureConfig::lobby());
        let mut three = surrogate_engine(Arc::new(super::super::FirstFit));
        three.autoscale = Some(AutoscaleConfig::steady());
        three.backpressure = Some(BackpressureConfig::lobby());
        three.shards = 3;
        assert_eq!(
            one.run_with_threads(2).metrics(),
            three.run_with_threads(2).metrics()
        );
    }

    #[test]
    fn backpressure_parks_and_conserves_attempts() {
        let mut eng = surrogate_engine(Arc::new(super::super::FirstFit));
        eng.backpressure = Some(BackpressureConfig {
            queue_limit: 4,
            retry_after_epochs: 1,
        });
        let (report, audit) = eng.run_audited(2);
        assert_eq!(
            audit.offered,
            audit.admitted + audit.rejected + audit.queued
        );
        assert_eq!(audit.queued, audit.retried + audit.expired);
        assert!(audit.peak_queue <= 4);
        let bp = report.dynamics.expect("dynamics present").backpressure;
        assert_eq!(bp.expect("bp stats").queued, audit.queued);
        assert!(audit.queued > 0, "saturating load should park something");
    }

    #[test]
    fn autoscale_covers_every_placement_with_an_active_window() {
        let mut eng = surrogate_engine(Arc::new(super::super::FirstFit));
        eng.epochs = 24;
        eng.autoscale = Some(AutoscaleConfig {
            eval_every_epochs: 2,
            warmup_epochs: 1,
            ..AutoscaleConfig::steady()
        });
        let (report, audit) = eng.run_audited(2);
        let stats = report
            .dynamics
            .expect("dynamics present")
            .autoscale
            .expect("autoscale stats");
        assert!(stats.grow_events > 0, "saturating load must trigger growth");
        assert!(stats.active_slot_epochs > 0);
        for p in &audit.placements {
            assert!(
                audit.activity[p.server]
                    .iter()
                    .any(|&(a, b)| a <= p.start_epoch && p.end_epoch <= b),
                "session {} on server {} [{}, {}) outside active windows {:?}",
                p.session,
                p.server,
                p.start_epoch,
                p.end_epoch,
                audit.activity[p.server]
            );
        }
    }

    #[test]
    fn migration_relieves_contended_servers() {
        let mut eng = surrogate_engine(Arc::new(super::super::FirstFit));
        eng.epochs = 24;
        eng.migration = Some(MigrationConfig {
            pressure_threshold: 0.5,
        });
        let (report, audit) = eng.run_audited(2);
        let stats = report
            .dynamics
            .expect("dynamics present")
            .migration
            .expect("migration stats");
        assert_eq!(stats.migrations, audit.migrations);
        assert!(stats.evaluations > 0);
        // Every migrated session keeps disjoint segments with a transfer
        // gap, and capacity still holds everywhere (checked broadly by the
        // property suite; spot-check the audit here).
        let mut by_session: std::collections::HashMap<u64, Vec<&Placement>> =
            std::collections::HashMap::new();
        for p in &audit.placements {
            by_session.entry(p.session).or_default().push(p);
        }
        for (session, mut segs) in by_session {
            segs.sort_by_key(|p| p.start_epoch);
            for w in segs.windows(2) {
                assert!(
                    w[0].end_epoch < w[1].start_epoch,
                    "session {session} segments overlap or lack a gap"
                );
            }
        }
        assert!(audit.migrations > 0, "low threshold must trigger moves");
    }

    // -- fault injection --------------------------------------------------

    use super::super::faults::{FaultEvent, FaultPlan, RecoveryConfig};
    use super::super::FaultKind;

    #[test]
    fn empty_fault_plan_is_inert() {
        let mut plain = surrogate_engine(Arc::new(super::super::FirstFit));
        plain.backpressure = Some(BackpressureConfig::lobby());
        let mut empty = surrogate_engine(Arc::new(super::super::FirstFit));
        empty.backpressure = Some(BackpressureConfig::lobby());
        empty.faults = Some(FaultPlan::default());
        let a = plain.run_with_threads(2);
        let b = empty.run_with_threads(2);
        assert_eq!(a.metrics(), b.metrics());
        // The empty plan normalizes away entirely — no ledger appears.
        assert!(b.dynamics.expect("bp dynamics").faults.is_none());
    }

    #[test]
    fn crashes_orphan_and_the_fault_ledger_balances() {
        let mut eng = surrogate_engine(Arc::new(super::super::FirstFit));
        eng.epochs = 24;
        eng.faults = Some(FaultPlan {
            scheduled: vec![
                FaultEvent {
                    at_epoch: 4,
                    server: 0,
                    kind: FaultKind::Crash {
                        drain_epochs: 0,
                        restart_after_epochs: Some(2),
                        warmup_epochs: 1,
                    },
                },
                FaultEvent {
                    at_epoch: 6,
                    server: 3,
                    kind: FaultKind::Crash {
                        drain_epochs: 2,
                        restart_after_epochs: None,
                        warmup_epochs: 0,
                    },
                },
            ],
            ..FaultPlan::default()
        });
        let (report, audit) = eng.run_audited(2);
        let fl = report
            .dynamics
            .expect("fault dynamics")
            .faults
            .expect("fault ledger");
        assert_eq!(fl.crashes, 2);
        assert!(fl.orphaned > 0, "a saturated server must orphan residents");
        assert!(fl.downtime_epochs > 0);
        assert!(
            fl.draining_epochs >= 2,
            "the drained crash waits two epochs"
        );
        // Every orphan resolves exactly once.
        assert_eq!(fl.orphaned + fl.evicted, fl.recovered + fl.lost);
        // Recovery never perturbs the admission ledger.
        assert_eq!(
            audit.offered,
            audit.admitted + audit.rejected + audit.queued
        );
        assert_eq!(audit.orphaned, fl.orphaned);
        assert_eq!(audit.recovered + audit.lost, fl.orphaned + fl.evicted);
        // Recovered sessions keep their identity: still no more distinct
        // session ids than admissions.
        let distinct: std::collections::HashSet<u64> =
            audit.placements.iter().map(|p| p.session).collect();
        assert_eq!(distinct.len() as u64, audit.admitted);
        // No placement ever lands on the downed server while it is down.
        for p in audit.placements.iter().filter(|p| p.server == 0) {
            assert!(
                p.end_epoch <= 4 || p.start_epoch >= 7,
                "placement [{}, {}) overlaps server 0 downtime",
                p.start_epoch,
                p.end_epoch
            );
        }
    }

    #[test]
    fn degradation_evicts_down_to_the_shrunken_capacity() {
        let mut eng = surrogate_engine(Arc::new(super::super::FirstFit));
        eng.epochs = 24;
        eng.faults = Some(FaultPlan {
            scheduled: vec![FaultEvent {
                at_epoch: 5,
                server: 0,
                kind: FaultKind::GpuDegrade {
                    severity: 0.9,
                    recover_after_epochs: Some(10),
                },
            }],
            ..FaultPlan::default()
        });
        let (report, audit) = eng.run_audited(2);
        let fl = report
            .dynamics
            .expect("fault dynamics")
            .faults
            .expect("fault ledger");
        assert_eq!(fl.gpu_degrades, 1);
        assert!(fl.evicted > 0, "a 90% cut must evict residents");
        assert_eq!(audit.capacity_steps[0].len(), 2, "degrade + recovery steps");
        assert!(audit.capacity_steps[0][0].1 < audit.capacity_steps[0][1].1);
        // Occupancy respects the stepped capacity at every epoch.
        for e in 0..eng.epochs {
            let cap = audit.capacity_steps[0]
                .iter()
                .take_while(|&&(at, _)| at <= e)
                .last()
                .map(|&(_, c)| c)
                .unwrap_or(audit.gpu_capacity_mib[0]);
            let used: u64 = audit
                .placements
                .iter()
                .filter(|p| p.server == 0 && p.start_epoch <= e && e < p.end_epoch)
                .map(|p| p.gpu_mib)
                .sum();
            assert!(
                used <= cap,
                "epoch {e}: {used} MiB resident on server 0 over cap {cap}"
            );
        }
    }

    #[test]
    fn brownouts_inflate_rtt_and_attribute_slo_damage() {
        let healthy = surrogate_engine(Arc::new(super::super::FirstFit));
        let mut stormy = surrogate_engine(Arc::new(super::super::FirstFit));
        stormy.faults = Some(FaultPlan {
            scheduled: (0..6)
                .map(|server| FaultEvent {
                    at_epoch: 1,
                    server,
                    kind: FaultKind::NetBrownout {
                        rtt_factor: 4.0,
                        jitter_ms: 60.0,
                        duration_epochs: 8,
                    },
                })
                .collect(),
            ..FaultPlan::default()
        });
        let a = healthy.run_with_threads(2);
        let b = stormy.run_with_threads(2);
        let fl = b
            .dynamics
            .as_ref()
            .expect("fault dynamics")
            .faults
            .expect("fault ledger");
        assert_eq!(fl.brownouts, 6);
        assert!(
            b.rtt.p99() > a.rtt.p99(),
            "a 4x brownout must move the tail"
        );
        assert!(b.rtt_violations > a.rtt_violations);
        assert!(fl.fault_rtt_violations > 0);
        assert!(fl.fault_rtt_violations <= b.rtt_violations);
        // FPS is untouched: brownouts are a network fault.
        assert_eq!(a.fps.p50(), b.fps.p50());
    }

    #[test]
    fn recovery_exhausts_attempts_against_a_full_fleet() {
        // One server, crashed for good: orphans retry with backoff until
        // attempts run out, then count as lost — never panic, never leak.
        let base = SystemConfig::turbovnc_stock();
        let spec = FleetSpec::new(1, mix(), Arc::new(super::super::FirstFit), 11).epochs(16);
        let mut eng = FleetEngine::from_spec(&spec);
        eng.data_plane = DataPlane::Surrogate;
        eng.arrivals = ArrivalConfig::saturating();
        eng.groups = vec![GroupSpec::with_gpu(1, &base, GpuModel::Gtx1080Ti)];
        eng.faults = Some(FaultPlan {
            scheduled: vec![FaultEvent {
                at_epoch: 2,
                server: 0,
                kind: FaultKind::Crash {
                    drain_epochs: 0,
                    restart_after_epochs: None,
                    warmup_epochs: 0,
                },
            }],
            recovery: RecoveryConfig {
                base_retry_epochs: 1,
                max_backoff_epochs: 2,
                max_attempts: 3,
                queue_limit: 8,
            },
            ..FaultPlan::default()
        });
        let (report, _) = eng.run_audited(1);
        let fl = report
            .dynamics
            .expect("fault dynamics")
            .faults
            .expect("fault ledger");
        assert!(fl.orphaned > 0);
        assert_eq!(fl.recovered, 0, "nowhere to recover to");
        assert_eq!(fl.orphaned, fl.lost);
        assert!(fl.recovery_retries > 0, "orphans must at least try");
    }

    #[test]
    fn parks_at_the_retry_horizon_expire_without_occupying_the_queue() {
        // Satellite regression: a park whose retry lands at or past the
        // horizon expires immediately under the same strict `< horizon`
        // rule think-time rejoins use — it must never hold a queue slot.
        let mut eng = surrogate_engine(Arc::new(super::super::FirstFit));
        eng.backpressure = Some(BackpressureConfig {
            queue_limit: 4,
            retry_after_epochs: eng.epochs,
        });
        let (_, audit) = eng.run_audited(1);
        assert!(audit.queued > 0, "saturating load must refuse something");
        assert_eq!(audit.expired, audit.queued);
        assert_eq!(audit.retried, 0);
        assert_eq!(audit.peak_queue, 0);
    }

    #[test]
    fn near_max_horizons_do_not_overflow_retry_arithmetic() {
        // Satellite regression: epoch-to-nanosecond products saturate, so
        // a pathological retry-after cannot wrap around the horizon check.
        let base = SystemConfig::turbovnc_stock();
        let spec = FleetSpec::new(2, mix(), Arc::new(super::super::FirstFit), 13).epochs(4);
        let mut eng = FleetEngine::from_spec(&spec);
        eng.data_plane = DataPlane::Surrogate;
        eng.groups = vec![GroupSpec::with_gpu(2, &base, GpuModel::Gtx1080Ti)];
        // Closed clients only: an open Poisson stream across a 253-year
        // horizon would draw forever.
        eng.arrivals = ArrivalConfig::saturating();
        eng.arrivals.open_rate_per_sec = 0.0;
        eng.arrivals.closed_clients = 16;
        eng.epoch = SimDuration::from_secs(2_000_000_000);
        eng.backpressure = Some(BackpressureConfig {
            queue_limit: 8,
            retry_after_epochs: u64::MAX / 2,
        });
        let (_, audit) = eng.run_audited(1);
        assert_eq!(audit.queued, audit.retried + audit.expired);
        assert_eq!(audit.retried, 0, "a saturated product can never retry");
    }
}
