//! Placement policies: pure decision functions over per-server load
//! snapshots.
//!
//! Both fleet runners (epoch replay and the online engine) offer every
//! candidate session to a [`PlacementPolicy`] against [`ServerLoad`]
//! bookkeeping snapshots; policies must be deterministic pure functions of
//! their inputs — fleet determinism rides on it.

use pictor_apps::App;
use pictor_render::contention::contention_states;

/// Pure bookkeeping snapshot of one server at a placement decision: what a
/// real cluster scheduler would know without touching the data plane.
#[derive(Debug, Clone)]
pub struct ServerLoad {
    /// Server index within the fleet.
    pub index: usize,
    /// Whether the candidate session fits here for its *entire* span
    /// (session slots and GPU memory, per epoch). Policies must only pick
    /// servers that fit.
    pub fits: bool,
    /// Sessions resident in the candidate's start epoch.
    pub sessions: usize,
    /// Session slots per server.
    pub slots: usize,
    /// Free GPU memory in the start epoch, MiB.
    pub gpu_free_mib: u64,
    /// Sum of resident apps' CPU cache pressure.
    pub cpu_pressure: f64,
    /// Sum of resident apps' GPU cache pressure.
    pub gpu_pressure: f64,
    /// Apps resident in the start epoch, in session order.
    pub apps: Vec<App>,
}

/// A placement policy: given the candidate session's app and per-server
/// load snapshots, pick a server index (or `None` to reject).
///
/// Implementations must be deterministic pure functions of their inputs —
/// fleet determinism rides on it.
pub trait PlacementPolicy: Send + Sync {
    /// The policy's axis label.
    fn label(&self) -> &str;

    /// Chooses a server for `app`, or `None` to reject the session. Only
    /// servers with [`ServerLoad::fits`] may be returned; a non-fitting
    /// choice is treated as a rejection.
    fn place(&self, app: &App, servers: &[ServerLoad]) -> Option<usize>;
}

/// First-fit: the lowest-indexed server with room — the baseline any
/// smarter policy must beat.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstFit;

impl PlacementPolicy for FirstFit {
    fn label(&self) -> &str {
        "first-fit"
    }

    fn place(&self, _app: &App, servers: &[ServerLoad]) -> Option<usize> {
        servers.iter().find(|s| s.fits).map(|s| s.index)
    }
}

/// Least-contended: among fitting servers, the one whose resident apps
/// exert the least combined CPU+GPU cache pressure (ties break to the
/// lower index).
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastContended;

impl PlacementPolicy for LeastContended {
    fn label(&self) -> &str {
        "least-contended"
    }

    fn place(&self, _app: &App, servers: &[ServerLoad]) -> Option<usize> {
        servers
            .iter()
            .filter(|s| s.fits)
            .min_by(|a, b| {
                let pa = a.cpu_pressure + a.gpu_pressure;
                let pb = b.cpu_pressure + b.gpu_pressure;
                pa.partial_cmp(&pb)
                    .expect("finite pressure")
                    .then(a.index.cmp(&b.index))
            })
            .map(|s| s.index)
    }
}

/// Interference-aware: evaluates the *post-placement* contention state of
/// every fitting server with the paper's cache model
/// ([`contention_states`]) and picks the one where the resulting aggregate
/// slowdown — summed over residents and the newcomer — is smallest.
#[derive(Debug, Clone, Copy, Default)]
pub struct InterferenceAware;

impl PlacementPolicy for InterferenceAware {
    fn label(&self) -> &str {
        "interference-aware"
    }

    fn place(&self, app: &App, servers: &[ServerLoad]) -> Option<usize> {
        let tuning = pictor_render::StageTuning::default();
        servers
            .iter()
            .filter(|s| s.fits)
            .map(|s| {
                let profiles: Vec<_> = s
                    .apps
                    .iter()
                    .chain(std::iter::once(app))
                    .map(|a| &a.profile)
                    .collect();
                let mults = vec![1.0; profiles.len()];
                let states = contention_states(&profiles, &tuning, &mults);
                let cost: f64 = states
                    .iter()
                    .map(|st| (1.0 - st.app_speed) + (1.0 - st.vnc_speed))
                    .sum();
                (s.index, cost)
            })
            .min_by(|(ia, ca), (ib, cb)| ca.partial_cmp(cb).expect("finite cost").then(ia.cmp(ib)))
            .map(|(i, _)| i)
    }
}

// ---------------------------------------------------------------------------
// victim policies (fault-driven eviction)
// ---------------------------------------------------------------------------

/// One evictable session on a server that lost capacity: what the fault
/// injector knows when GPU-memory degradation forces residents out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VictimCandidate {
    /// Session id.
    pub session: u64,
    /// GPU memory the session holds, MiB.
    pub gpu_mib: u64,
    /// Epochs the session still has to run on this server.
    pub remaining_epochs: u64,
    /// The session's own CPU+GPU cache pressure.
    pub pressure: f64,
}

/// Orders capacity-driven eviction when a degradation event shrinks a
/// server below its residents' footprint. Like [`PlacementPolicy`],
/// implementations must be deterministic pure functions of their inputs —
/// fault-run determinism rides on it.
pub trait VictimPolicy: Send + Sync {
    /// The policy's label (reports and debugging).
    fn label(&self) -> &str;

    /// Picks the index of the next victim among `candidates` (never
    /// empty). The engine evicts and re-asks until capacity holds.
    fn pick(&self, candidates: &[VictimCandidate]) -> usize;
}

/// Evict the session holding the most GPU memory first — fewest evictions
/// to get back under capacity (ties break to the lower session id, the
/// longest-resident session).
#[derive(Debug, Clone, Copy, Default)]
pub struct LargestMemoryFirst;

impl VictimPolicy for LargestMemoryFirst {
    fn label(&self) -> &str {
        "largest-memory-first"
    }

    fn pick(&self, candidates: &[VictimCandidate]) -> usize {
        candidates
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                a.gpu_mib
                    .cmp(&b.gpu_mib)
                    .then(b.session.cmp(&a.session))
                    .then(ib.cmp(ia))
            })
            .map(|(i, _)| i)
            .expect("candidates must be non-empty")
    }
}

/// Evict the session closest to finishing first — it loses the least
/// remaining service (ties break to the larger memory footprint, then the
/// lower session id).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestRemainingFirst;

impl VictimPolicy for ShortestRemainingFirst {
    fn label(&self) -> &str {
        "shortest-remaining-first"
    }

    fn pick(&self, candidates: &[VictimCandidate]) -> usize {
        candidates
            .iter()
            .enumerate()
            .min_by(|(ia, a), (ib, b)| {
                a.remaining_epochs
                    .cmp(&b.remaining_epochs)
                    .then(b.gpu_mib.cmp(&a.gpu_mib))
                    .then(a.session.cmp(&b.session))
                    .then(ia.cmp(ib))
            })
            .map(|(i, _)| i)
            .expect("candidates must be non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pictor_apps::AppId;

    fn load(index: usize, fits: bool, sessions: usize) -> ServerLoad {
        ServerLoad {
            index,
            fits,
            sessions,
            slots: 4,
            gpu_free_mib: 8 * 1024,
            cpu_pressure: sessions as f64 * 0.5,
            gpu_pressure: sessions as f64 * 0.3,
            apps: Vec::new(),
        }
    }

    #[test]
    fn first_fit_picks_lowest_fitting_index() {
        let app: App = AppId::Dota2.into();
        let mut loads = vec![load(0, false, 4), load(1, true, 2), load(2, true, 0)];
        assert_eq!(FirstFit.place(&app, &loads), Some(1));
        loads[1].fits = false;
        assert_eq!(FirstFit.place(&app, &loads), Some(2));
        loads[2].fits = false;
        assert_eq!(FirstFit.place(&app, &loads), None);
    }

    #[test]
    fn least_contended_avoids_pressure() {
        let app: App = AppId::Dota2.into();
        let mut heavy = load(0, true, 2);
        heavy.cpu_pressure = 3.0;
        heavy.gpu_pressure = 2.0;
        let light = load(1, true, 2);
        assert_eq!(LeastContended.place(&app, &[heavy, light]), Some(1));
    }

    #[test]
    fn victim_policies_order_deterministically() {
        let c = |session, gpu_mib, remaining_epochs, pressure| VictimCandidate {
            session,
            gpu_mib,
            remaining_epochs,
            pressure,
        };
        let cands = [c(3, 2048, 5, 0.4), c(1, 4096, 9, 0.8), c(7, 4096, 2, 0.1)];
        // Largest memory first; the memory tie breaks to the lower id.
        assert_eq!(LargestMemoryFirst.pick(&cands), 1);
        // Shortest remaining first.
        assert_eq!(ShortestRemainingFirst.pick(&cands), 2);
        let solo = [c(9, 512, 1, 0.2)];
        assert_eq!(LargestMemoryFirst.pick(&solo), 0);
        assert_eq!(ShortestRemainingFirst.pick(&solo), 0);
    }

    #[test]
    fn interference_aware_prefers_gentle_coherents() {
        // STK is the paper's most contentious co-runner, 0AD the least:
        // the interference-aware policy must steer a newcomer away from
        // the STK-loaded server when an 0AD-loaded one fits.
        let app: App = AppId::RedEclipse.into();
        let mut stk = load(0, true, 1);
        stk.apps = vec![AppId::SuperTuxKart.into()];
        let mut zad = load(1, true, 1);
        zad.apps = vec![AppId::ZeroAd.into()];
        assert_eq!(InterferenceAware.place(&app, &[stk, zad]), Some(1));
    }
}
