//! Fleet-scale cloud simulation: many [`CloudSystem`](pictor_render::CloudSystem)
//! servers behind a placement/admission layer, with session churn and
//! tail-latency SLO accounting.
//!
//! The paper benchmarks co-located instances on a *single* server; the next
//! layer up is a deployment. Two runners share one vocabulary:
//!
//! * [`FleetSpec::run`] — the original **epoch replay**: arrivals are
//!   replayed deterministically in a single thread, quantized to whole
//!   epochs, and every server interval is simulated as an independent
//!   `CloudSystem` in parallel (see [`replay`]).
//! * [`FleetEngine::run`] — the **event-driven online loop**: per-server-group
//!   shards of a pooled event queue process arrival/departure/epoch-tick
//!   events, scale to 1000+ heterogeneous servers and millions of arrivals,
//!   and support the dynamic policies replay cannot express — autoscaling,
//!   migration and admission backpressure (see [`engine`] and [`autoscale`]).
//!
//! The engine additionally takes a deterministic [`FaultPlan`] (see
//! [`faults`]): scheduled and hazard-driven server crashes, GPU-memory
//! degradation with capacity-aware eviction, and network brownouts, with
//! crash orphans re-placed through the backpressure queue under
//! exponential backoff. The fault ledger ([`FaultStats`]) conserves
//! `orphaned + evicted = recovered + lost`, and an empty plan is a proven
//! byte-level no-op (`tests/fleet_chaos_differential.rs`).
//!
//! For static fleets the engine reproduces the replay report **byte for
//! byte** (`tests/fleet_engine_differential.rs`); with dynamics enabled it
//! extends [`FleetReport`] with a [`FleetDynamics`] section.
//!
//! # Execution model (replay)
//!
//! Fleet time is divided into fixed **epochs**. Phase 1 replays the arrival
//! process deterministically in a single thread: every session request is
//! quantized to whole epochs, offered to the placement policy against pure
//! bookkeeping snapshots ([`ServerLoad`]), and either admitted (occupying
//! its server for its whole span) or rejected (open-loop sessions are lost;
//! closed-loop clients retry after a think time). Phase 2 carves every
//! server's occupancy timeline into maximal intervals with an unchanged
//! session set and simulates each interval as an independent `CloudSystem`
//! (warm-up, then one counter window per epoch, with RTTs tracked across the
//! whole interval so epoch boundaries don't censor slow inputs), **in
//! parallel across OS threads**. Phase 3 reduces the per-interval results in
//! (server, epoch) order.
//!
//! Determinism follows the suite runner's discipline: interval seeds derive
//! from *names* (`server-{s}/e{epoch}`), never from thread identity, and
//! reduction order is fixed — running a fleet with 1 thread or N threads
//! emits byte-identical reports (`tests/fleet_determinism.rs` locks this
//! in; `tests/fleet_engine_determinism.rs` extends the matrix to shard
//! counts).

pub mod autoscale;
pub mod engine;
pub mod faults;
pub mod policy;
pub mod replay;
pub mod report;

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;

use pictor_apps::App;
use pictor_render::SystemConfig;
use pictor_sim::rng::lognormal_mean_cv;
use pictor_sim::{SeedTree, SimDuration};

use crate::suite::default_threads;

pub use autoscale::{AutoscaleConfig, BackpressureConfig, MigrationConfig};
pub use engine::{
    Admission, DataPlane, FleetAudit, FleetEngine, FleetSnapshot, GroupSpec, LiveFleet, Placement,
    SessionTelemetry,
};
pub use faults::{FaultEvent, FaultKind, FaultPlan, Hazard, Health, RecoveryConfig};
pub use policy::{
    FirstFit, InterferenceAware, LargestMemoryFirst, LeastContended, PlacementPolicy, ServerLoad,
    ShortestRemainingFirst, VictimCandidate, VictimPolicy,
};
pub use report::{
    AutoscaleStats, BackpressureStats, FaultStats, FleetDynamics, FleetReport, FleetSuiteReport,
    MigrationStats,
};

// ---------------------------------------------------------------------------
// workload mix
// ---------------------------------------------------------------------------

/// A weighted mixture of applications that arriving sessions request.
#[derive(Debug, Clone)]
pub struct WorkloadMix {
    entries: Vec<(App, f64)>,
    total: f64,
}

impl WorkloadMix {
    /// A uniform mix over `apps`.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty.
    pub fn uniform(apps: impl IntoIterator<Item = impl Into<App>>) -> Self {
        Self::weighted(apps.into_iter().map(|a| (a, 1.0)))
    }

    /// A mix with explicit per-app weights.
    ///
    /// # Panics
    ///
    /// Panics if no entry has a positive finite weight.
    pub fn weighted(entries: impl IntoIterator<Item = (impl Into<App>, f64)>) -> Self {
        let entries: Vec<(App, f64)> = entries
            .into_iter()
            .map(|(app, w)| (app.into(), w))
            .collect();
        assert!(
            entries.iter().all(|(_, w)| w.is_finite() && *w >= 0.0),
            "mix weights must be finite and non-negative"
        );
        let total: f64 = entries.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0, "workload mix needs positive total weight");
        WorkloadMix { entries, total }
    }

    /// The apps in the mix, in declaration order.
    pub fn apps(&self) -> impl Iterator<Item = &App> {
        self.entries.iter().map(|(app, _)| app)
    }

    /// Draws one app (one `f64` from the stream per call, so draw counts
    /// stay deterministic).
    pub(crate) fn sample(&self, rng: &mut SmallRng) -> App {
        let mut x = rng.gen::<f64>() * self.total;
        for (app, w) in &self.entries {
            x -= w;
            if x <= 0.0 {
                return app.clone();
            }
        }
        self.entries.last().expect("non-empty mix").0.clone()
    }
}

// ---------------------------------------------------------------------------
// arrivals
// ---------------------------------------------------------------------------

/// Session arrival/churn model, per server (a fleet of `N` servers sees
/// `N ×` these rates — load is declared as density so the same profile
/// stresses an 8-server and an 80-server fleet equally).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalConfig {
    /// Axis label (appears in cell names and reports).
    pub label: String,
    /// Open-loop Poisson arrival rate, sessions per second per server.
    /// Rejected open-loop sessions are lost.
    pub open_rate_per_sec: f64,
    /// Closed-loop client population per server. Each client joins, plays a
    /// session, thinks, and rejoins; a rejected client retries after a
    /// think time.
    pub closed_clients: usize,
    /// Mean session duration, seconds (lognormal, cv 0.5).
    pub mean_session_secs: f64,
    /// Mean think time between closed-loop sessions, seconds (exponential).
    pub mean_think_secs: f64,
}

impl ArrivalConfig {
    /// Moderate load: a half-occupied fleet with steady churn.
    pub fn moderate() -> Self {
        ArrivalConfig {
            label: "moderate".into(),
            open_rate_per_sec: 0.05,
            closed_clients: 2,
            mean_session_secs: 8.0,
            mean_think_secs: 4.0,
        }
    }

    /// Saturating load: more demand than slots, forcing rejections.
    pub fn saturating() -> Self {
        ArrivalConfig {
            label: "saturating".into(),
            open_rate_per_sec: 0.25,
            closed_clients: 6,
            mean_session_secs: 10.0,
            mean_think_secs: 2.0,
        }
    }

    /// Renames the profile (labels key grid cells, so they must be unique
    /// per grid axis).
    pub fn labelled(mut self, label: &str) -> Self {
        self.label = label.into();
        self
    }
}

/// The duration/think sampling shared by open- and closed-loop arrivals.
pub(crate) fn sample_session_secs(rng: &mut SmallRng, cfg: &ArrivalConfig) -> f64 {
    lognormal_mean_cv(rng, cfg.mean_session_secs.max(1e-3), 0.5)
}

// ---------------------------------------------------------------------------
// SLO
// ---------------------------------------------------------------------------

/// Service-level objectives checked per session-epoch sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Per-input RTT ceiling, ms (every tracked RTT above it is a
    /// violation).
    pub max_rtt_ms: f64,
    /// Per-session-epoch server-FPS floor.
    pub min_fps: f64,
}

impl SloSpec {
    /// Cloud-gaming interactivity targets: 120 ms RTT, 25 FPS.
    pub fn interactive() -> Self {
        SloSpec {
            max_rtt_ms: 120.0,
            min_fps: 25.0,
        }
    }
}

impl Default for SloSpec {
    fn default() -> Self {
        Self::interactive()
    }
}

// ---------------------------------------------------------------------------
// fleet spec
// ---------------------------------------------------------------------------

/// A fleet experiment: servers, arrivals, placement, SLOs, timing.
pub struct FleetSpec {
    /// Number of servers.
    pub servers: usize,
    /// Session slots per server (the paper co-locates up to four
    /// instances per machine).
    pub slots_per_server: usize,
    /// Per-server system configuration.
    pub server_config: SystemConfig,
    /// Arrival/churn model (rates are per server).
    pub arrivals: ArrivalConfig,
    /// What arriving sessions run.
    pub mix: WorkloadMix,
    /// Placement policy.
    pub policy: Arc<dyn PlacementPolicy>,
    /// Service-level objectives.
    pub slo: SloSpec,
    /// Epoch length (one measured window per epoch).
    pub epoch: SimDuration,
    /// Fleet horizon in epochs.
    pub epochs: u64,
    /// Warm-up simulated time at the start of every server interval.
    pub warmup: SimDuration,
    /// Master seed.
    pub seed: u64,
}

impl FleetSpec {
    /// A fleet with the experiment defaults: 4 slots/server, stock server
    /// configuration, 1 s epochs, 20 epochs, 1 s warm-up, interactive SLOs.
    pub fn new(
        servers: usize,
        mix: WorkloadMix,
        policy: Arc<dyn PlacementPolicy>,
        seed: u64,
    ) -> Self {
        FleetSpec {
            servers,
            slots_per_server: 4,
            server_config: SystemConfig::turbovnc_stock(),
            arrivals: ArrivalConfig::moderate(),
            mix,
            policy,
            slo: SloSpec::interactive(),
            epoch: SimDuration::from_secs(1),
            epochs: 20,
            warmup: SimDuration::from_secs(1),
            seed,
        }
    }

    /// Sets the arrival model.
    pub fn arrivals(mut self, arrivals: ArrivalConfig) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Sets the fleet horizon in epochs (one measured window each).
    pub fn epochs(mut self, epochs: u64) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the session slots per server.
    pub fn slots_per_server(mut self, slots: usize) -> Self {
        self.slots_per_server = slots;
        self
    }

    /// Sets the SLO targets.
    pub fn slo(mut self, slo: SloSpec) -> Self {
        self.slo = slo;
        self
    }

    /// Runs the fleet on `PICTOR_THREADS` OS threads (default: available
    /// parallelism).
    pub fn run(&self) -> FleetReport {
        self.run_with_threads(default_threads())
    }

    /// Runs the fleet on exactly `threads` OS threads. The report is
    /// byte-identical for any `threads >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `threads`, `servers`, `slots_per_server`, `epochs` or the
    /// epoch length is zero.
    pub fn run_with_threads(&self, threads: usize) -> FleetReport {
        assert!(threads > 0, "need at least one thread");
        assert!(self.servers > 0, "fleet needs at least one server");
        assert!(self.slots_per_server > 0, "need at least one slot");
        assert!(self.epochs > 0, "fleet horizon must be positive");
        assert!(!self.epoch.is_zero(), "epoch length must be positive");
        let schedule = self.schedule_sessions();
        self.execute(schedule, threads)
    }
}

// ---------------------------------------------------------------------------
// fleet grid
// ---------------------------------------------------------------------------

/// A declarative fleet experiment matrix: fleet-size × arrival-rate ×
/// placement-policy, following the scenario-suite discipline (cell seeds
/// from cell names, reduction in grid order).
pub struct FleetGrid {
    name: String,
    seed: u64,
    sizes: Vec<usize>,
    rates: Vec<ArrivalConfig>,
    policies: Vec<Arc<dyn PlacementPolicy>>,
    mix: WorkloadMix,
    slots_per_server: usize,
    server_config: SystemConfig,
    slo: SloSpec,
    epoch: SimDuration,
    epochs: u64,
    warmup: SimDuration,
}

impl FleetGrid {
    /// Creates a grid over `mix` with no axes declared yet (axes left empty
    /// get a default: 8 servers, moderate arrivals, first-fit placement).
    pub fn new(name: &str, mix: WorkloadMix, seed: u64) -> Self {
        FleetGrid {
            name: name.into(),
            seed,
            sizes: Vec::new(),
            rates: Vec::new(),
            policies: Vec::new(),
            mix,
            slots_per_server: 4,
            server_config: SystemConfig::turbovnc_stock(),
            slo: SloSpec::interactive(),
            epoch: SimDuration::from_secs(1),
            epochs: 20,
            warmup: SimDuration::from_secs(1),
        }
    }

    /// Adds a fleet size (server count) to the size axis.
    pub fn size(mut self, servers: usize) -> Self {
        self.sizes.push(servers);
        self
    }

    /// Adds an arrival profile to the rate axis.
    pub fn rate(mut self, arrivals: ArrivalConfig) -> Self {
        self.rates.push(arrivals);
        self
    }

    /// Adds a placement policy to the policy axis.
    pub fn policy(mut self, policy: impl PlacementPolicy + 'static) -> Self {
        self.policies.push(Arc::new(policy));
        self
    }

    /// Sets the fleet horizon in epochs for every cell.
    pub fn epochs(mut self, epochs: u64) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the session slots per server for every cell.
    pub fn slots_per_server(mut self, slots: usize) -> Self {
        self.slots_per_server = slots;
        self
    }

    /// Sets the SLO targets for every cell.
    pub fn slo(mut self, slo: SloSpec) -> Self {
        self.slo = slo;
        self
    }

    /// The grid name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The grid's master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of cells the grid expands into.
    pub fn len(&self) -> usize {
        self.sizes.len().max(1) * self.rates.len().max(1) * self.policies.len().max(1)
    }

    /// True when every axis is empty (the grid still expands to one
    /// default cell).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Expands the grid into its cell specs, in grid order (sizes
    /// outermost, policies innermost) — the same specs [`FleetGrid::run`]
    /// executes. Public so the differential suite can drive each cell
    /// through [`FleetEngine::from_spec`] as well.
    pub fn specs(&self) -> Vec<FleetSpec> {
        let sizes = if self.sizes.is_empty() {
            vec![8]
        } else {
            self.sizes.clone()
        };
        let rates = if self.rates.is_empty() {
            vec![ArrivalConfig::moderate()]
        } else {
            self.rates.clone()
        };
        let policies: Vec<Arc<dyn PlacementPolicy>> = if self.policies.is_empty() {
            vec![Arc::new(FirstFit)]
        } else {
            self.policies.clone()
        };
        let tree = SeedTree::new(self.seed);
        let mut cells = Vec::with_capacity(self.len());
        for &servers in &sizes {
            for rate in &rates {
                for policy in &policies {
                    let name = cell_name(servers, &rate.label, policy.label());
                    cells.push(FleetSpec {
                        servers,
                        slots_per_server: self.slots_per_server,
                        server_config: self.server_config.clone(),
                        arrivals: rate.clone(),
                        mix: self.mix.clone(),
                        policy: Arc::clone(policy),
                        slo: self.slo,
                        epoch: self.epoch,
                        epochs: self.epochs,
                        warmup: self.warmup,
                        seed: tree.child(&name).master(),
                    });
                }
            }
        }
        cells
    }

    /// Runs every cell on `PICTOR_THREADS` OS threads.
    pub fn run(&self) -> FleetSuiteReport {
        self.run_with_threads(default_threads())
    }

    /// Runs every cell, each fleet advancing its servers in parallel on
    /// `threads` OS threads. Byte-identical for any `threads >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or two cells share a name (duplicate
    /// axis labels).
    pub fn run_with_threads(&self, threads: usize) -> FleetSuiteReport {
        let cells = self.specs();
        {
            let mut seen = std::collections::HashSet::new();
            for spec in &cells {
                let name = cell_name(spec.servers, &spec.arrivals.label, spec.policy.label());
                assert!(
                    seen.insert(name.clone()),
                    "fleet grid {}: duplicate cell {name:?} (same axis labels declared twice)",
                    self.name
                );
            }
        }
        let reports = cells
            .iter()
            .map(|spec| spec.run_with_threads(threads))
            .collect();
        FleetSuiteReport::from_cells(&self.name, self.seed, reports)
    }
}

pub(crate) fn cell_name(servers: usize, rate: &str, policy: &str) -> String {
    format!("s{servers}/{rate}/{policy}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pictor_apps::AppId;

    pub(super) fn mix() -> WorkloadMix {
        WorkloadMix::uniform([AppId::Dota2, AppId::SuperTuxKart, AppId::ZeroAd])
    }

    pub(super) fn tiny_spec(policy: Arc<dyn PlacementPolicy>) -> FleetSpec {
        FleetSpec::new(4, mix(), policy, 2020)
            .epochs(3)
            .arrivals(ArrivalConfig::moderate())
    }

    #[test]
    fn mix_sampling_is_weighted_and_deterministic() {
        let mix = WorkloadMix::weighted([(AppId::Dota2, 3.0), (AppId::ZeroAd, 1.0)]);
        let draw = |seed: u64| {
            let mut rng = SeedTree::new(seed).stream("mix");
            (0..400)
                .map(|_| mix.sample(&mut rng).code().to_string())
                .collect::<Vec<_>>()
        };
        let a = draw(5);
        assert_eq!(a, draw(5));
        let d2 = a.iter().filter(|c| *c == "D2").count();
        assert!(d2 > 240 && d2 < 360, "weighted draw skew: {d2}/400");
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn empty_mix_panics() {
        let _ = WorkloadMix::weighted(Vec::<(App, f64)>::new());
    }

    #[test]
    fn tiny_fleet_run_produces_finite_nonzero_metrics() {
        let report = tiny_spec(Arc::new(FirstFit)).run_with_threads(2);
        assert!(report.admitted > 0, "no sessions admitted");
        assert!(report.session_epochs > 0);
        assert!(report.utilization > 0.0 && report.utilization <= 1.0);
        assert!(report.fps.p50() > 0.0, "fps p50 {}", report.fps.p50());
        assert!(report.fps.p99() >= report.fps.p50());
        assert!(report.tracked_inputs > 0, "no RTTs tracked");
        assert!(report.rtt.p99() >= report.rtt.p50());
        assert!(report.rtt.p50() > 0.0);
        assert!(report.non_finite_paths().is_empty());
    }

    #[test]
    fn fleet_runs_identically_on_any_thread_count() {
        let one = tiny_spec(Arc::new(InterferenceAware)).run_with_threads(1);
        let four = tiny_spec(Arc::new(InterferenceAware)).run_with_threads(4);
        assert_eq!(one.metrics(), four.metrics());
    }

    #[test]
    fn grid_expands_and_reports() {
        let suite = FleetGrid::new("unit_fleet", mix(), 11)
            .size(2)
            .size(3)
            .rate(ArrivalConfig::moderate())
            .policy(FirstFit)
            .policy(LeastContended)
            .epochs(2)
            .run_with_threads(2);
        assert_eq!(suite.cells().len(), 4);
        suite.assert_finite();
        let cell = suite.cell(2, "moderate", "first-fit");
        assert!(cell.admitted > 0);
        let json = suite.to_json();
        assert!(json.contains("\"s2/moderate/first-fit\""));
        assert!(suite.to_csv().contains("s3/moderate/least-contended"));
        assert!(suite.summary_table().contains("FPS p50/p99"));
    }

    #[test]
    #[should_panic(expected = "duplicate cell")]
    fn duplicate_axis_labels_panic() {
        let _ = FleetGrid::new("dup", mix(), 1)
            .size(2)
            .policy(FirstFit)
            .policy(FirstFit)
            .epochs(1)
            .run_with_threads(1);
    }
}
