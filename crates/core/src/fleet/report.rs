//! Fleet report types and deterministic emitters.
//!
//! [`FleetReport`] is the reduced outcome of one fleet run (either
//! runner); [`FleetSuiteReport`] aggregates a grid of them with JSON/CSV
//! emitters whose bytes depend only on (grid, seed) — never on thread or
//! shard count. Runs with dynamic policies enabled (autoscaling,
//! migration, backpressure) attach a [`FleetDynamics`] section; static
//! runs leave it `None` and emit exactly the bytes the epoch replay
//! always has.

use std::fmt::Write as _;

use pictor_sim::{SimDuration, TailQuantiles};

use crate::report::{csv_field, json_escape, json_num, Table};

use super::{cell_name, SloSpec};

// ---------------------------------------------------------------------------
// dynamics
// ---------------------------------------------------------------------------

/// Autoscaler outcome counters for one fleet run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AutoscaleStats {
    /// Servers activated (warm-up scheduled) by grow decisions.
    pub grow_events: u64,
    /// Servers deactivated by shrink decisions.
    pub shrink_events: u64,
    /// Smallest active-server count observed at any evaluation.
    pub min_active_servers: usize,
    /// Largest active-server count observed at any evaluation.
    pub max_active_servers: usize,
    /// Slot-epochs actually provisioned (active servers only) — the
    /// denominator of utilization under autoscaling.
    pub active_slot_epochs: u64,
}

/// Migration outcome counters for one fleet run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Epoch-boundary evaluations that looked for a contended server.
    pub evaluations: u64,
    /// Sessions actually moved to a cooler server.
    pub migrations: u64,
}

/// Admission-backpressure outcome counters for one fleet run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackpressureStats {
    /// Arrivals parked in the pending queue instead of being rejected.
    pub queued: u64,
    /// Parked arrivals re-offered to placement after their retry-after.
    pub retried: u64,
    /// Parked arrivals whose retry fell past the horizon.
    pub expired: u64,
    /// Arrivals refused because the pending queue was full.
    pub dropped: u64,
    /// Largest pending-queue length observed.
    pub peak_queue: usize,
}

/// The fault ledger of one engine run under a non-empty
/// [`FaultPlan`](super::FaultPlan): injections by class, downtime
/// accounting, the orphan-recovery balance and the SLO impact
/// attributable to faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Crash injections applied (including drained crashes).
    pub crashes: u64,
    /// GPU-memory degradation injections applied.
    pub gpu_degrades: u64,
    /// Network-brownout injections applied.
    pub brownouts: u64,
    /// Injections skipped because the target was not serving.
    pub skipped: u64,
    /// Server-epochs spent `Down`.
    pub downtime_epochs: u64,
    /// Server-epochs spent `WarmingUp` after a restart.
    pub warming_epochs: u64,
    /// Server-epochs spent `Draining` before a notified crash.
    pub draining_epochs: u64,
    /// Sessions orphaned by crashes.
    pub orphaned: u64,
    /// Sessions evicted by capacity degradation.
    pub evicted: u64,
    /// Orphaned/evicted sessions successfully re-placed.
    pub recovered: u64,
    /// Orphaned/evicted sessions lost for good (queue full, attempts
    /// exhausted, or retry past the horizon).
    pub lost: u64,
    /// Re-placement attempts offered for orphaned/evicted sessions.
    pub recovery_retries: u64,
    /// Total epochs between orphaning and re-placement, over recovered
    /// sessions.
    pub recovery_latency_epochs: u64,
    /// RTT SLO violations that only happened because a brownout inflated
    /// the sample (the clean sample was inside the SLO).
    pub fault_rtt_violations: u64,
}

impl FaultStats {
    /// Mean epochs from orphaning to re-placement (0 when nothing
    /// recovered).
    pub fn mean_recovery_epochs(&self) -> f64 {
        if self.recovered == 0 {
            0.0
        } else {
            self.recovery_latency_epochs as f64 / self.recovered as f64
        }
    }
}

/// Dynamic-policy outcomes attached to a [`FleetReport`] when the online
/// engine runs with autoscaling, migration, backpressure or fault
/// injection enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FleetDynamics {
    /// Present when autoscaling was configured.
    pub autoscale: Option<AutoscaleStats>,
    /// Present when migration was configured.
    pub migration: Option<MigrationStats>,
    /// Present when backpressure was configured.
    pub backpressure: Option<BackpressureStats>,
    /// Present when a non-empty fault plan was configured.
    pub faults: Option<FaultStats>,
}

impl FleetDynamics {
    /// The flat numeric metrics of the dynamics section, in a fixed order
    /// shared by the JSON/CSV emitters and the golden tests. Only
    /// configured policies contribute entries.
    pub fn metrics(&self) -> Vec<(&'static str, f64)> {
        let mut m = Vec::new();
        if let Some(a) = &self.autoscale {
            m.push(("autoscale_grow_events", a.grow_events as f64));
            m.push(("autoscale_shrink_events", a.shrink_events as f64));
            m.push(("autoscale_min_active", a.min_active_servers as f64));
            m.push(("autoscale_max_active", a.max_active_servers as f64));
            m.push(("autoscale_active_slot_epochs", a.active_slot_epochs as f64));
        }
        if let Some(mg) = &self.migration {
            m.push(("migration_evaluations", mg.evaluations as f64));
            m.push(("migrations", mg.migrations as f64));
        }
        if let Some(b) = &self.backpressure {
            m.push(("backpressure_queued", b.queued as f64));
            m.push(("backpressure_retried", b.retried as f64));
            m.push(("backpressure_expired", b.expired as f64));
            m.push(("backpressure_dropped", b.dropped as f64));
            m.push(("backpressure_peak_queue", b.peak_queue as f64));
        }
        if let Some(f) = &self.faults {
            m.push(("fault_crashes", f.crashes as f64));
            m.push(("fault_gpu_degrades", f.gpu_degrades as f64));
            m.push(("fault_brownouts", f.brownouts as f64));
            m.push(("fault_skipped", f.skipped as f64));
            m.push(("fault_downtime_epochs", f.downtime_epochs as f64));
            m.push(("fault_warming_epochs", f.warming_epochs as f64));
            m.push(("fault_draining_epochs", f.draining_epochs as f64));
            m.push(("fault_orphaned", f.orphaned as f64));
            m.push(("fault_evicted", f.evicted as f64));
            m.push(("fault_recovered", f.recovered as f64));
            m.push(("fault_lost", f.lost as f64));
            m.push(("fault_recovery_retries", f.recovery_retries as f64));
            m.push(("fault_mean_recovery_epochs", f.mean_recovery_epochs()));
            m.push(("fault_rtt_violations", f.fault_rtt_violations as f64));
        }
        m
    }
}

// ---------------------------------------------------------------------------
// fleet report
// ---------------------------------------------------------------------------

/// The reduced outcome of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Number of servers.
    pub servers: usize,
    /// Session slots per server.
    pub slots_per_server: usize,
    /// Fleet horizon in epochs.
    pub epochs: u64,
    /// Epoch length.
    pub epoch: SimDuration,
    /// Placement-policy label.
    pub policy: String,
    /// Arrival-profile label.
    pub arrivals: String,
    /// Master seed.
    pub seed: u64,
    /// Placement attempts (open arrivals + closed joins/retries).
    pub offered: u64,
    /// Sessions admitted.
    pub admitted: u64,
    /// Attempts rejected.
    pub rejected: u64,
    /// Peak concurrent sessions across the fleet.
    pub peak_sessions: usize,
    /// Occupied slot-epochs over available slot-epochs.
    pub utilization: f64,
    /// Measured (session × epoch) samples behind the FPS tail.
    pub session_epochs: u64,
    /// Tracked RTT samples behind the RTT tail.
    pub tracked_inputs: u64,
    /// Streaming server-FPS tail over session-epoch samples.
    pub fps: TailQuantiles,
    /// Streaming RTT tail over every tracked input, ms.
    pub rtt: TailQuantiles,
    /// The SLO targets the violation counts refer to.
    pub slo: SloSpec,
    /// Session-epochs below [`SloSpec::min_fps`].
    pub fps_violations: u64,
    /// Tracked inputs above [`SloSpec::max_rtt_ms`].
    pub rtt_violations: u64,
    /// Dynamic-policy outcomes — `None` for the epoch replay and for
    /// static online-engine runs (their reports are byte-identical).
    pub dynamics: Option<FleetDynamics>,
}

impl FleetReport {
    /// Rejected attempts over offered attempts (zero when nothing was
    /// offered).
    pub fn rejection_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.rejected as f64 / self.offered as f64
        }
    }

    /// Fraction of session-epochs violating the FPS floor.
    pub fn fps_violation_rate(&self) -> f64 {
        if self.session_epochs == 0 {
            0.0
        } else {
            self.fps_violations as f64 / self.session_epochs as f64
        }
    }

    /// Fraction of tracked inputs violating the RTT ceiling.
    pub fn rtt_violation_rate(&self) -> f64 {
        if self.tracked_inputs == 0 {
            0.0
        } else {
            self.rtt_violations as f64 / self.tracked_inputs as f64
        }
    }

    /// The flat numeric metrics of the report, in a fixed order shared by
    /// the JSON/CSV emitters and the golden tests. Dynamics metrics are
    /// *not* included — they live in [`FleetDynamics::metrics`] so static
    /// reports keep their historical shape.
    pub fn metrics(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("offered", self.offered as f64),
            ("admitted", self.admitted as f64),
            ("rejected", self.rejected as f64),
            ("rejection_rate", self.rejection_rate()),
            ("utilization", self.utilization),
            ("peak_sessions", self.peak_sessions as f64),
            ("session_epochs", self.session_epochs as f64),
            ("tracked_inputs", self.tracked_inputs as f64),
            ("fps_p50", self.fps.p50()),
            ("fps_p95", self.fps.p95()),
            ("fps_p99", self.fps.p99()),
            ("fps_min", self.fps.min()),
            ("rtt_p50", self.rtt.p50()),
            ("rtt_p95", self.rtt.p95()),
            ("rtt_p99", self.rtt.p99()),
            ("rtt_max", self.rtt.max()),
            ("slo_fps_violation_rate", self.fps_violation_rate()),
            ("slo_rtt_violation_rate", self.rtt_violation_rate()),
        ]
    }

    /// Paths of every non-finite metric (empty when clean).
    pub fn non_finite_paths(&self) -> Vec<String> {
        let mut bad: Vec<String> = self
            .metrics()
            .into_iter()
            .filter(|(_, v)| !v.is_finite())
            .map(|(k, v)| format!("{k} = {v}"))
            .collect();
        if let Some(d) = &self.dynamics {
            bad.extend(
                d.metrics()
                    .into_iter()
                    .filter(|(_, v)| !v.is_finite())
                    .map(|(k, v)| format!("dynamics/{k} = {v}")),
            );
        }
        bad
    }
}

// ---------------------------------------------------------------------------
// fleet suite report
// ---------------------------------------------------------------------------

/// The unified outcome of a fleet grid run, with deterministic JSON/CSV
/// emitters mirroring [`SuiteReport`](crate::SuiteReport).
pub struct FleetSuiteReport {
    name: String,
    seed: u64,
    cells: Vec<FleetReport>,
}

impl FleetSuiteReport {
    /// Assembles a suite report from already-run cells, in grid order.
    /// Public so the differential suite can reduce engine-run cells
    /// through the exact emitters [`FleetGrid::run`](super::FleetGrid::run)
    /// uses.
    pub fn from_cells(name: &str, seed: u64, cells: Vec<FleetReport>) -> Self {
        FleetSuiteReport {
            name: name.into(),
            seed,
            cells,
        }
    }

    /// The grid name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The grid's master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Every cell, in grid order (sizes outermost, policies innermost).
    pub fn cells(&self) -> &[FleetReport] {
        &self.cells
    }

    /// The unique cell with these axis values.
    ///
    /// # Panics
    ///
    /// Panics if no cell matches.
    pub fn cell(&self, servers: usize, rate: &str, policy: &str) -> &FleetReport {
        self.cells
            .iter()
            .find(|c| c.servers == servers && c.arrivals == rate && c.policy == policy)
            .unwrap_or_else(|| {
                panic!(
                    "fleet suite {}: no cell {}",
                    self.name,
                    cell_name(servers, rate, policy)
                )
            })
    }

    /// Paths of every non-finite metric in the report (empty when clean).
    pub fn non_finite_paths(&self) -> Vec<String> {
        let mut bad = Vec::new();
        for cell in &self.cells {
            let name = cell_name(cell.servers, &cell.arrivals, &cell.policy);
            for path in cell.non_finite_paths() {
                bad.push(format!("{name}/{path}"));
            }
        }
        bad
    }

    /// Asserts the report contains no NaN or infinite metric.
    ///
    /// # Panics
    ///
    /// Panics listing every offending metric path.
    pub fn assert_finite(&self) {
        let bad = self.non_finite_paths();
        assert!(
            bad.is_empty(),
            "fleet suite {} has non-finite metrics:\n  {}",
            self.name,
            bad.join("\n  ")
        );
    }

    /// Serializes the report as JSON. Deterministic: same grid + seed →
    /// byte-identical output, independent of thread count. Cells without
    /// dynamics emit exactly the historical byte layout; a `"dynamics"`
    /// object follows `"metrics"` only when present.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"suite\": {},", json_escape(&self.name));
        let _ = writeln!(out, "  \"seed\": \"{}\",", self.seed);
        out.push_str("  \"cells\": [\n");
        for (ci, cell) in self.cells.iter().enumerate() {
            let name = cell_name(cell.servers, &cell.arrivals, &cell.policy);
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": {},", json_escape(&name));
            let _ = writeln!(out, "      \"servers\": {},", cell.servers);
            let _ = writeln!(
                out,
                "      \"slots_per_server\": {},",
                cell.slots_per_server
            );
            let _ = writeln!(out, "      \"rate\": {},", json_escape(&cell.arrivals));
            let _ = writeln!(out, "      \"policy\": {},", json_escape(&cell.policy));
            let _ = writeln!(out, "      \"epochs\": {},", cell.epochs);
            let _ = writeln!(out, "      \"epoch_ns\": {},", cell.epoch.as_nanos());
            let _ = writeln!(out, "      \"seed\": \"{}\",", cell.seed);
            let _ = writeln!(
                out,
                "      \"slo_max_rtt_ms\": {},",
                json_num(cell.slo.max_rtt_ms)
            );
            let _ = writeln!(
                out,
                "      \"slo_min_fps\": {},",
                json_num(cell.slo.min_fps)
            );
            out.push_str("      \"metrics\": {");
            let metrics = cell.metrics();
            for (mi, (key, v)) in metrics.iter().enumerate() {
                if mi > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", json_escape(key), json_num(*v));
            }
            match &cell.dynamics {
                None => out.push_str("}\n"),
                Some(d) => {
                    out.push_str("},\n");
                    out.push_str("      \"dynamics\": {");
                    for (mi, (key, v)) in d.metrics().iter().enumerate() {
                        if mi > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "{}: {}", json_escape(key), json_num(*v));
                    }
                    out.push_str("}\n");
                }
            }
            let comma = if ci + 1 < self.cells.len() { "," } else { "" };
            let _ = writeln!(out, "    }}{comma}");
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serializes the report as CSV: one row per (cell, metric).
    /// Deterministic like [`FleetSuiteReport::to_json`]. Dynamics metrics
    /// append extra rows per cell only when present.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("cell,servers,rate,policy,seed,metric,value\n");
        for cell in &self.cells {
            let name = cell_name(cell.servers, &cell.arrivals, &cell.policy);
            let mut metrics = cell.metrics();
            if let Some(d) = &cell.dynamics {
                metrics.extend(d.metrics());
            }
            for (key, v) in metrics {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{}",
                    csv_field(&name),
                    cell.servers,
                    csv_field(&cell.arrivals),
                    csv_field(&cell.policy),
                    cell.seed,
                    csv_field(key),
                    if v.is_finite() {
                        format!("{v}")
                    } else {
                        String::new()
                    }
                );
            }
        }
        out
    }

    /// Renders a compact human-readable summary (one row per cell).
    pub fn summary_table(&self) -> String {
        let mut t = Table::new(
            [
                "cell",
                "offered",
                "admitted",
                "rej %",
                "util %",
                "FPS p50/p99",
                "RTT p50/p99 ms",
                "SLO viol %",
            ]
            .map(String::from)
            .to_vec(),
        );
        for cell in &self.cells {
            t.row(vec![
                cell_name(cell.servers, &cell.arrivals, &cell.policy),
                cell.offered.to_string(),
                cell.admitted.to_string(),
                format!("{:.1}", cell.rejection_rate() * 100.0),
                format!("{:.1}", cell.utilization * 100.0),
                format!("{:.1}/{:.1}", cell.fps.p50(), cell.fps.p99()),
                format!("{:.1}/{:.1}", cell.rtt.p50(), cell.rtt.p99()),
                format!(
                    "{:.1}/{:.1}",
                    cell.fps_violation_rate() * 100.0,
                    cell.rtt_violation_rate() * 100.0
                ),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn static_cell() -> FleetReport {
        FleetReport {
            servers: 2,
            slots_per_server: 4,
            epochs: 3,
            epoch: SimDuration::from_secs(1),
            policy: "first-fit".into(),
            arrivals: "moderate".into(),
            seed: 9,
            offered: 10,
            admitted: 8,
            rejected: 2,
            peak_sessions: 5,
            utilization: 0.5,
            session_epochs: 12,
            tracked_inputs: 40,
            fps: TailQuantiles::new(),
            rtt: TailQuantiles::new(),
            slo: SloSpec::interactive(),
            fps_violations: 1,
            rtt_violations: 2,
            dynamics: None,
        }
    }

    #[test]
    fn dynamics_section_only_appears_when_present() {
        let plain = FleetSuiteReport::from_cells("t", 1, vec![static_cell()]);
        assert!(!plain.to_json().contains("\"dynamics\""));
        assert!(!plain.to_csv().contains("backpressure_queued"));

        let mut dynamic = static_cell();
        dynamic.dynamics = Some(FleetDynamics {
            autoscale: None,
            migration: Some(MigrationStats {
                evaluations: 3,
                migrations: 1,
            }),
            backpressure: Some(BackpressureStats {
                queued: 4,
                retried: 3,
                expired: 1,
                dropped: 0,
                peak_queue: 2,
            }),
            faults: None,
        });
        let suite = FleetSuiteReport::from_cells("t", 1, vec![dynamic]);
        let json = suite.to_json();
        assert!(json.contains("\"dynamics\": {\"migration_evaluations\": 3"));
        assert!(json.contains("\"backpressure_peak_queue\": 2"));
        let csv = suite.to_csv();
        assert!(csv.contains("migrations,1"));
        assert!(csv.contains("backpressure_queued,4"));
    }

    #[test]
    fn dynamics_metrics_respect_configured_sections() {
        let d = FleetDynamics {
            autoscale: Some(AutoscaleStats::default()),
            migration: None,
            backpressure: None,
            faults: None,
        };
        let keys: Vec<&str> = d.metrics().into_iter().map(|(k, _)| k).collect();
        assert!(keys.iter().all(|k| k.starts_with("autoscale_")));
        assert_eq!(keys.len(), 5);
    }

    #[test]
    fn fault_ledger_metrics_appear_with_a_plan() {
        let mut cell = static_cell();
        cell.dynamics = Some(FleetDynamics {
            faults: Some(FaultStats {
                crashes: 2,
                orphaned: 5,
                evicted: 1,
                recovered: 4,
                lost: 2,
                recovery_latency_epochs: 8,
                ..FaultStats::default()
            }),
            ..FleetDynamics::default()
        });
        let f = cell.dynamics.unwrap().faults.unwrap();
        assert_eq!(f.mean_recovery_epochs(), 2.0);
        let suite = FleetSuiteReport::from_cells("t", 1, vec![cell]);
        let json = suite.to_json();
        assert!(json.contains("\"fault_crashes\": 2"));
        assert!(json.contains("\"fault_mean_recovery_epochs\": 2"));
        let csv = suite.to_csv();
        assert!(csv.contains("fault_recovered,4"));
        assert!(csv.contains("fault_lost,2"));
        assert_eq!(FaultStats::default().mean_recovery_epochs(), 0.0);
    }
}
