//! Deterministic fault injection for the online fleet engine.
//!
//! A [`FaultPlan`] describes what goes wrong during a fleet run — server
//! crashes with restart lag and slow warm-up, GPU-memory degradation that
//! shrinks a server mid-interval (via the
//! [`pictor_hw::degrade_mib`]/[`GpuModel::degraded_mib`](pictor_hw::GpuModel::degraded_mib)
//! hook), and network brownouts that inflate RTT and jitter — as a mix of
//! *scheduled* events ([`FaultEvent`]) and *stochastic* hazards
//! ([`Hazard`]) whose injection times are drawn from named
//! [`SeedTree`] streams before the run starts. Materialization is a pure
//! function of `(plan, seed, fleet shape)`, so a faulty run is exactly as
//! byte-deterministic across threads and shards as a healthy one, and an
//! *empty* plan is differential-tested byte-identical to no plan at all
//! (`tests/fleet_chaos_differential.rs`).
//!
//! # The health state machine
//!
//! Every server carries a [`Health`] state next to its autoscale status:
//!
//! ```text
//!            GpuDegrade                 Crash {drain_epochs > 0}
//!   Healthy ───────────▶ Degraded    Healthy/Degraded ──▶ Draining
//!      ▲  ◀───────────      │                                │ drain_epochs
//!      │    recovery        │ Crash                          ▼
//!      │                    ▼                              Down
//!      │                  Down ◀──────────────────────────── │
//!      │                    │ restart_after_epochs           │
//!      │                    ▼                                │
//!      └───────────── WarmingUp ◀────────────────────────────┘
//!         warmup_epochs
//! ```
//!
//! `Healthy` and `Degraded` servers serve placements; `Draining` keeps its
//! sessions but takes no new ones; `Down` orphans everything it held;
//! `WarmingUp` is the post-restart lag before the server is placeable
//! again. Injections landing on a non-serving server are skipped (and
//! counted in the fault ledger).
//!
//! # Recovery
//!
//! Sessions orphaned by a crash (or evicted by degradation) re-enter
//! placement through the engine's pending queue with exponential backoff
//! plus deterministic jitter ([`RecoveryConfig`]); capacity lost to
//! degradation is reclaimed by evicting residents in [`VictimPolicy`]
//! order until the server fits again.

use std::sync::Arc;

use pictor_sim::rng::geometric;
use pictor_sim::SeedTree;

use super::policy::{LargestMemoryFirst, VictimPolicy};

/// Per-server health state. See the module docs for the transition
/// diagram; [`Health::serving`] is what placement checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Full capacity, taking placements.
    Healthy,
    /// Lost GPU memory but still serving (at reduced capacity).
    Degraded,
    /// Advance-notice crash: keeps residents, takes no new placements.
    Draining,
    /// Crashed: no residents, no placements, waiting on restart.
    Down,
    /// Restarted, not yet placeable (slow warm-up).
    WarmingUp,
}

impl Health {
    /// Whether a server in this state accepts new placements.
    pub fn serving(self) -> bool {
        matches!(self, Health::Healthy | Health::Degraded)
    }
}

/// One class of infrastructure failure.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The server goes down, orphaning its sessions.
    Crash {
        /// Advance-notice epochs spent `Draining` (0 = abrupt crash).
        drain_epochs: u64,
        /// Epochs down before the restart begins; `None` = never restarts
        /// this run.
        restart_after_epochs: Option<u64>,
        /// Post-restart `WarmingUp` epochs before the server is placeable.
        warmup_epochs: u64,
    },
    /// GPU memory banks retire: capacity shrinks by `severity` via
    /// [`pictor_hw::degrade_mib`], evicting residents that no longer fit.
    GpuDegrade {
        /// Fraction of device memory lost, in `(0, 1]`.
        severity: f64,
        /// Epochs until capacity (and `Healthy`) is restored; `None` =
        /// permanent for the run.
        recover_after_epochs: Option<u64>,
    },
    /// Network brownout: the server's RTT samples are multiplied by
    /// `rtt_factor` and jittered by up to `jitter_ms` while the window
    /// lasts. Sessions stay placed — only tail quality suffers.
    NetBrownout {
        /// Multiplier applied to every RTT sample, ≥ 1.
        rtt_factor: f64,
        /// Additional uniform jitter amplitude, ms.
        jitter_ms: f64,
        /// Window length in epochs, ≥ 1.
        duration_epochs: u64,
    },
}

impl FaultKind {
    /// Stable class label (ledger and debugging).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Crash { .. } => "crash",
            FaultKind::GpuDegrade { .. } => "gpu-degrade",
            FaultKind::NetBrownout { .. } => "net-brownout",
        }
    }

    /// Epochs a hazard stream must skip after injecting this fault so the
    /// next draw lands after the fault's own busy window; `None` means the
    /// server never returns (a crash with no restart) and the stream stops.
    fn busy_epochs(&self) -> Option<u64> {
        match self {
            FaultKind::Crash {
                drain_epochs,
                restart_after_epochs,
                warmup_epochs,
            } => restart_after_epochs.map(|r| {
                drain_epochs
                    .saturating_add(r)
                    .saturating_add(*warmup_epochs)
            }),
            FaultKind::GpuDegrade {
                recover_after_epochs,
                ..
            } => Some(recover_after_epochs.unwrap_or(0)),
            FaultKind::NetBrownout {
                duration_epochs, ..
            } => Some(*duration_epochs),
        }
    }

    fn validate(&self) {
        match self {
            FaultKind::Crash { .. } => {}
            FaultKind::GpuDegrade { severity, .. } => {
                assert!(
                    *severity > 0.0 && *severity <= 1.0,
                    "degradation severity must be in (0, 1]: {severity}"
                );
            }
            FaultKind::NetBrownout {
                rtt_factor,
                jitter_ms,
                duration_epochs,
            } => {
                assert!(
                    rtt_factor.is_finite() && *rtt_factor >= 1.0,
                    "brownout rtt_factor must be finite and ≥ 1: {rtt_factor}"
                );
                assert!(
                    jitter_ms.is_finite() && *jitter_ms >= 0.0,
                    "brownout jitter_ms must be finite and ≥ 0: {jitter_ms}"
                );
                assert!(
                    *duration_epochs >= 1,
                    "brownout duration must be at least one epoch"
                );
            }
        }
    }
}

/// A scheduled injection: `kind` hits `server` at epoch `at_epoch`.
/// Events targeting servers outside the fleet or epochs past the horizon
/// are dropped at materialization.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Injection epoch.
    pub at_epoch: u64,
    /// Target server index.
    pub server: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A stochastic injection source: every server independently draws
/// geometric inter-fault gaps at `per_server_epoch` probability from its
/// own named [`SeedTree`] stream (`faults/hazard-{h}/srv-{s}`), so the
/// injection schedule depends only on (seed, plan, fleet shape) — never on
/// threads, shards or event order.
#[derive(Debug, Clone, PartialEq)]
pub struct Hazard {
    /// Per-server, per-epoch injection probability, in `[0, 1)`.
    pub per_server_epoch: f64,
    /// What each injection does.
    pub kind: FaultKind,
}

/// How crash-orphaned (and degradation-evicted) sessions retry placement:
/// exponential backoff `base · 2^attempt` capped at `max_backoff_epochs`,
/// plus a deterministic sub-epoch jitter hashed from (seed, session,
/// attempt), through the engine's bounded pending queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// First-retry delay in epochs.
    pub base_retry_epochs: u64,
    /// Backoff ceiling in epochs.
    pub max_backoff_epochs: u64,
    /// Placement attempts before a session is abandoned (counted lost).
    pub max_attempts: u32,
    /// Pending-queue bound for orphans when the engine runs without
    /// [`BackpressureConfig`](super::BackpressureConfig) (which otherwise
    /// supplies the shared bound).
    pub queue_limit: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            base_retry_epochs: 1,
            max_backoff_epochs: 8,
            max_attempts: 6,
            queue_limit: 64,
        }
    }
}

impl RecoveryConfig {
    fn validate(&self) {
        assert!(
            self.base_retry_epochs >= 1,
            "recovery base_retry_epochs must be at least 1"
        );
        assert!(
            self.max_backoff_epochs >= self.base_retry_epochs,
            "recovery max_backoff_epochs must be ≥ base_retry_epochs"
        );
        assert!(self.max_attempts >= 1, "recovery needs at least 1 attempt");
        assert!(self.queue_limit >= 1, "recovery queue_limit must be ≥ 1");
    }
}

/// The full fault schedule of a run: scheduled events, stochastic hazards,
/// recovery tuning and the eviction victim policy. `FaultPlan::default()`
/// is the *empty* plan — byte-identical to running with no plan at all.
#[derive(Clone)]
pub struct FaultPlan {
    /// Injections pinned to (epoch, server).
    pub scheduled: Vec<FaultEvent>,
    /// Seeded stochastic injection sources.
    pub hazards: Vec<Hazard>,
    /// Orphan re-placement behaviour.
    pub recovery: RecoveryConfig,
    /// Who gets evicted when degradation shrinks a server below its
    /// residents' footprint.
    pub victims: Arc<dyn VictimPolicy>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            scheduled: Vec::new(),
            hazards: Vec::new(),
            recovery: RecoveryConfig::default(),
            victims: Arc::new(LargestMemoryFirst),
        }
    }
}

impl FaultPlan {
    /// True when the plan injects nothing — the engine then takes exactly
    /// the fault-free code path.
    pub fn is_empty(&self) -> bool {
        self.scheduled.is_empty() && self.hazards.is_empty()
    }

    /// Validates every event, hazard and the recovery config.
    ///
    /// # Panics
    ///
    /// Panics on the first invalid field.
    pub fn validate(&self) {
        for ev in &self.scheduled {
            ev.kind.validate();
        }
        for h in &self.hazards {
            assert!(
                h.per_server_epoch.is_finite()
                    && h.per_server_epoch >= 0.0
                    && h.per_server_epoch < 1.0,
                "hazard probability must be in [0, 1): {}",
                h.per_server_epoch
            );
            h.kind.validate();
        }
        self.recovery.validate();
    }

    /// Expands the plan into the concrete injection list for a fleet of
    /// `servers` over `epochs`: scheduled events filtered to the fleet and
    /// horizon, plus one geometric draw walk per (hazard, server) from
    /// `tree.child("faults")`. The result is sorted by (epoch, server)
    /// with scheduled events stably ahead of hazard draws — a pure
    /// function of the inputs.
    pub fn materialize(&self, tree: &SeedTree, servers: usize, epochs: u64) -> Vec<FaultEvent> {
        let mut out: Vec<FaultEvent> = self
            .scheduled
            .iter()
            .filter(|ev| ev.server < servers && ev.at_epoch < epochs)
            .cloned()
            .collect();
        let ft = tree.child("faults");
        for (h, hazard) in self.hazards.iter().enumerate() {
            if hazard.per_server_epoch <= 0.0 {
                continue;
            }
            for s in 0..servers {
                let mut rng = ft
                    .child_indexed("hazard-", h as u64)
                    .stream_indexed("srv-", s as u64);
                let mut e = 0u64;
                loop {
                    e = e.saturating_add(geometric(&mut rng, hazard.per_server_epoch));
                    if e >= epochs {
                        break;
                    }
                    out.push(FaultEvent {
                        at_epoch: e,
                        server: s,
                        kind: hazard.kind.clone(),
                    });
                    // Skip the fault's own busy window so a stream cannot
                    // pile injections onto a server that is still failing.
                    match hazard.kind.busy_epochs() {
                        Some(busy) => e = e.saturating_add(busy),
                        None => break,
                    }
                }
            }
        }
        out.sort_by_key(|ev| (ev.at_epoch, ev.server));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash() -> FaultKind {
        FaultKind::Crash {
            drain_epochs: 0,
            restart_after_epochs: Some(2),
            warmup_epochs: 1,
        }
    }

    #[test]
    fn empty_plan_materializes_nothing() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        plan.validate();
        assert!(plan.materialize(&SeedTree::new(7), 16, 100).is_empty());
    }

    #[test]
    fn materialization_is_deterministic_and_sorted() {
        let plan = FaultPlan {
            scheduled: vec![
                FaultEvent {
                    at_epoch: 5,
                    server: 3,
                    kind: crash(),
                },
                // Dropped: outside the fleet / horizon.
                FaultEvent {
                    at_epoch: 5,
                    server: 99,
                    kind: crash(),
                },
                FaultEvent {
                    at_epoch: 400,
                    server: 0,
                    kind: crash(),
                },
            ],
            hazards: vec![Hazard {
                per_server_epoch: 0.05,
                kind: FaultKind::NetBrownout {
                    rtt_factor: 2.0,
                    jitter_ms: 10.0,
                    duration_epochs: 3,
                },
            }],
            ..FaultPlan::default()
        };
        plan.validate();
        let tree = SeedTree::new(42);
        let a = plan.materialize(&tree, 8, 200);
        let b = plan.materialize(&tree, 8, 200);
        assert_eq!(a, b);
        assert!(a.iter().any(|ev| ev.at_epoch == 5 && ev.server == 3));
        assert!(a.iter().all(|ev| ev.server < 8 && ev.at_epoch < 200));
        assert!(
            a.windows(2)
                .all(|w| (w[0].at_epoch, w[0].server) <= (w[1].at_epoch, w[1].server)),
            "materialized events must be sorted"
        );
        // The hazard actually fired somewhere at 5%/server/epoch × 8 × 200.
        assert!(a.len() > 1, "hazard produced no injections");
    }

    #[test]
    fn hazard_streams_respect_busy_windows() {
        let plan = FaultPlan {
            hazards: vec![Hazard {
                per_server_epoch: 0.5,
                kind: FaultKind::NetBrownout {
                    rtt_factor: 1.5,
                    jitter_ms: 0.0,
                    duration_epochs: 10,
                },
            }],
            ..FaultPlan::default()
        };
        let events = plan.materialize(&SeedTree::new(1), 1, 100);
        for w in events.windows(2) {
            assert!(
                w[1].at_epoch >= w[0].at_epoch + 10,
                "injections overlap the previous brownout: {w:?}"
            );
        }
    }

    #[test]
    fn unrecoverable_crash_hazard_stops_after_one_injection() {
        let plan = FaultPlan {
            hazards: vec![Hazard {
                per_server_epoch: 0.9,
                kind: FaultKind::Crash {
                    drain_epochs: 0,
                    restart_after_epochs: None,
                    warmup_epochs: 0,
                },
            }],
            ..FaultPlan::default()
        };
        let events = plan.materialize(&SeedTree::new(3), 2, 1000);
        assert_eq!(events.len(), 2, "one terminal crash per server");
    }

    #[test]
    #[should_panic(expected = "hazard probability")]
    fn hazard_probability_one_is_rejected() {
        FaultPlan {
            hazards: vec![Hazard {
                per_server_epoch: 1.0,
                kind: crash(),
            }],
            ..FaultPlan::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "severity")]
    fn zero_severity_degrade_is_rejected() {
        FaultPlan {
            scheduled: vec![FaultEvent {
                at_epoch: 0,
                server: 0,
                kind: FaultKind::GpuDegrade {
                    severity: 0.0,
                    recover_after_epochs: None,
                },
            }],
            ..FaultPlan::default()
        }
        .validate();
    }

    #[test]
    fn serving_states_are_exactly_healthy_and_degraded() {
        assert!(Health::Healthy.serving());
        assert!(Health::Degraded.serving());
        assert!(!Health::Draining.serving());
        assert!(!Health::Down.serving());
        assert!(!Health::WarmingUp.serving());
    }
}
