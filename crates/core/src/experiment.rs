//! Experiment orchestration.
//!
//! Every figure/table regenerator follows the same protocol the paper's §4
//! describes: bring the system up with a set of benchmark instances, warm it
//! up (the paper notes results stabilize after ~10 minutes of a 15-minute
//! session; the simulation reaches steady state in seconds), measure a
//! window, then reduce records + reports into [`InstanceMetrics`].

use pictor_apps::App;
use pictor_render::driver::ClientDriver;
use pictor_render::records::Record;
use pictor_render::{CloudSystem, SystemConfig};
use pictor_sim::{SeedTree, SimDuration, SimTime};

use crate::metrics::InstanceMetrics;
use crate::tracker::{InputTracker, InstanceTrack};

/// Builds a driver for instance `index` running `app`.
pub type DriverFactory<'a> = dyn FnMut(usize, &App, &SeedTree) -> Box<dyn ClientDriver> + 'a;

/// An experiment: apps, system configuration, timing.
pub struct ExperimentSpec<'a> {
    /// One entry per co-located instance.
    pub apps: Vec<App>,
    /// System under test.
    pub config: SystemConfig,
    /// Master seed.
    pub seed: u64,
    /// Warm-up simulated time before measurement.
    pub warmup: SimDuration,
    /// Measured window length.
    pub duration: SimDuration,
    /// Retain the raw record stream in the result (memory-heavy; for trace
    /// figures and debugging).
    pub keep_records: bool,
    /// Driver builder.
    pub drivers: Box<DriverFactory<'a>>,
}

impl<'a> ExperimentSpec<'a> {
    /// A spec with human drivers — the most common case. Apps can be given
    /// as [`App`] handles or as [`AppId`](pictor_apps::AppId) builtins.
    pub fn with_humans(
        apps: impl IntoIterator<Item = impl Into<App>>,
        config: SystemConfig,
        seed: u64,
    ) -> Self {
        ExperimentSpec::with_drivers(
            apps,
            config,
            seed,
            Box::new(|_, app, seeds| Box::new(pictor_render::HumanDriver::from_seeds(app, seeds))),
        )
    }

    /// A spec with an arbitrary driver factory and the default timing.
    pub fn with_drivers(
        apps: impl IntoIterator<Item = impl Into<App>>,
        config: SystemConfig,
        seed: u64,
        drivers: Box<DriverFactory<'a>>,
    ) -> Self {
        ExperimentSpec {
            apps: apps.into_iter().map(Into::into).collect(),
            config,
            seed,
            warmup: SimDuration::from_secs(3),
            duration: SimDuration::from_secs(30),
            keep_records: false,
            drivers,
        }
    }
}

/// The outcome of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Per-instance combined metrics, in instance order.
    pub instances: Vec<InstanceMetrics>,
    /// Start of the measured window (after warm-up) on the simulation clock.
    pub window_start: SimTime,
    /// The raw record stream, when [`ExperimentSpec::keep_records`] was set.
    pub records: Option<Vec<Record>>,
}

impl ExperimentResult {
    /// Metrics of the single instance (convenience for solo runs).
    ///
    /// # Panics
    ///
    /// Panics if the experiment had more than one instance.
    pub fn solo(&self) -> &InstanceMetrics {
        assert_eq!(self.instances.len(), 1, "not a solo experiment");
        &self.instances[0]
    }
}

/// Runs an experiment to completion.
pub fn run_experiment(spec: ExperimentSpec<'_>) -> ExperimentResult {
    let mut records = Vec::new();
    run_experiment_into(spec, &mut records)
}

/// [`run_experiment`] draining into a caller-owned record buffer, so
/// repeated runs (scenario grids, fleet intervals) reuse one allocation
/// instead of growing a fresh `Vec` per experiment. The buffer is cleared
/// on entry; unless `keep_records` moves it into the result, it is left
/// holding the run's records with its capacity intact for the next call.
pub fn run_experiment_into(
    mut spec: ExperimentSpec<'_>,
    records: &mut Vec<Record>,
) -> ExperimentResult {
    records.clear();
    let seeds = SeedTree::new(spec.seed);
    let mut sys = CloudSystem::new(spec.config.clone(), seeds);
    for (i, app) in spec.apps.iter().enumerate() {
        let inst_seeds = seeds.child_indexed("driver-", i as u64);
        let driver = (spec.drivers)(i, app, &inst_seeds);
        sys.add_instance(app, driver);
    }
    sys.start();
    sys.run_for(spec.warmup);
    sys.reset_accounting();
    let window_start = sys.now();
    sys.run_for(spec.duration);
    sys.drain_records_into(records);
    let reports = sys.reports();
    let tracks = InputTracker::new().analyze(records);
    let empty = InstanceTrack::default();
    let instances = reports
        .into_iter()
        .enumerate()
        .map(|(i, report)| {
            let track = tracks.get(&(i as u32)).unwrap_or(&empty);
            InstanceMetrics::from_parts(report, track)
        })
        .collect();
    ExperimentResult {
        instances,
        window_start,
        records: spec.keep_records.then(|| std::mem::take(records)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pictor_apps::AppId;
    use pictor_render::records::Stage;

    #[test]
    fn solo_human_experiment_produces_full_metrics() {
        let spec = ExperimentSpec {
            duration: SimDuration::from_secs(15),
            ..ExperimentSpec::with_humans(
                vec![AppId::RedEclipse],
                SystemConfig::turbovnc_stock(),
                11,
            )
        };
        let result = run_experiment(spec);
        let m = result.solo();
        assert!(m.report.server_fps > 20.0);
        assert!(m.tracked_inputs > 10);
        assert!(
            m.rtt.mean > 30.0 && m.rtt.mean < 250.0,
            "rtt {}",
            m.rtt.mean
        );
        assert!(m.rtt.p1 <= m.rtt.p25 && m.rtt.p75 <= m.rtt.p99);
        assert!(m.server_time_ms > 10.0, "server {}", m.server_time_ms);
        assert!(m.stage_ms(Stage::Ss) > 1.0);
        assert!(m.app_time_ms > 5.0);
    }

    #[test]
    fn pair_experiment_reports_both() {
        let spec = ExperimentSpec {
            duration: SimDuration::from_secs(10),
            ..ExperimentSpec::with_humans(
                vec![AppId::Dota2, AppId::SuperTuxKart],
                SystemConfig::turbovnc_stock(),
                12,
            )
        };
        let result = run_experiment(spec);
        assert_eq!(result.instances.len(), 2);
        assert_eq!(result.instances[0].report.app, AppId::Dota2);
        assert_eq!(result.instances[1].report.app, AppId::SuperTuxKart);
        for m in &result.instances {
            assert!(m.report.server_fps > 5.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let spec = ExperimentSpec {
                duration: SimDuration::from_secs(6),
                ..ExperimentSpec::with_humans(
                    vec![AppId::Imhotep],
                    SystemConfig::turbovnc_stock(),
                    77,
                )
            };
            run_experiment(spec)
        };
        let a = run();
        let b = run();
        assert_eq!(a.solo().report, b.solo().report);
        assert_eq!(a.solo().rtt, b.solo().rtt);
    }

    #[test]
    #[should_panic(expected = "not a solo experiment")]
    fn solo_on_pair_panics() {
        let spec = ExperimentSpec {
            warmup: SimDuration::from_secs(1),
            duration: SimDuration::from_secs(2),
            ..ExperimentSpec::with_humans(
                vec![AppId::Dota2, AppId::Dota2],
                SystemConfig::turbovnc_stock(),
                1,
            )
        };
        let result = run_experiment(spec);
        let _ = result.solo();
    }
}
