//! The intelligent client mounted as a pipeline driver.
//!
//! Bridges `pictor-client`'s trained CNN+LSTM stack into the rendering
//! system's [`ClientDriver`] interface: per displayed frame the real
//! networks run on the frame pixels, while the latency charged to the
//! simulated client machine comes from the paper-scale FLOP-cost model
//! (Fig 7: ~72.7 ms CV + ~1.9 ms RNN).

use pictor_apps::world::DetectedObject;
use pictor_client::IntelligentClient;
use pictor_gfx::Frame;
use pictor_render::driver::{ClientDriver, Reaction};

/// The intelligent client driver.
///
/// The inference occupies the client machine serially, so `busy` equals the
/// inference latency — which is what bounds the IC at ~804 APM (§4).
#[derive(Debug)]
pub struct IcDriver {
    ic: IntelligentClient,
}

impl IcDriver {
    /// Wraps a trained intelligent client.
    pub fn new(ic: IntelligentClient) -> Self {
        IcDriver { ic }
    }

    /// The wrapped client.
    pub fn client(&self) -> &IntelligentClient {
        &self.ic
    }
}

impl ClientDriver for IcDriver {
    fn name(&self) -> &'static str {
        "intelligent-client"
    }

    fn on_frame(&mut self, frame: &Frame, _truth: &[DetectedObject]) -> Reaction {
        let (action, cv, rnn) = self.ic.decide(frame);
        let latency = cv + rnn;
        Reaction {
            action,
            latency,
            busy: latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pictor_apps::AppId;
    use pictor_client::ic::IcTrainConfig;
    use pictor_sim::SeedTree;

    #[test]
    fn ic_driver_reacts_with_inference_latency() {
        let seeds = SeedTree::new(5);
        let ic = IntelligentClient::train(AppId::RedEclipse, &seeds, IcTrainConfig::fast());
        let mut driver = IcDriver::new(ic);
        assert_eq!(driver.name(), "intelligent-client");
        let frame = pictor_gfx::draw_scene(0, &[], 0.2, 0.6);
        let r = driver.on_frame(&frame, &[]);
        let ms = r.latency.as_millis_f64();
        assert!((40.0..120.0).contains(&ms), "latency {ms}ms");
        assert_eq!(r.latency, r.busy);
        assert_eq!(*driver.client().app(), AppId::RedEclipse);
    }
}
