//! The hook-site model (paper Fig 4, Table 1).
//!
//! Pictor instruments the system at ten hook sites without modifying any
//! application: proxies are patched (hooks 1–3, 8–10) and the graphics stack
//! is interposed at standard API calls (hooks 4–7). This module gives those
//! sites names, maps them to the intercepted calls, and classifies which
//! pipeline records correspond to which hook — the documentation-of-record
//! for how the tracker interprets the event stream.

use pictor_gfx::ApiCall;
use pictor_render::records::{Record, Stage};

/// One of the ten hook sites of Fig 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HookSite {
    /// Client proxy: tags and sends each input.
    Hook1,
    /// Server proxy: extracts the tag from the network package.
    Hook2,
    /// Server proxy: forwards tag+input to the application.
    Hook3,
    /// Application: input received (`XNextEvent`/`glutKeyboardFunc`).
    Hook4,
    /// Application: GPU rendering starts (`glXSwapBuffers`).
    Hook5,
    /// Interposer: frame copy starts (`glReadBuffer`/`glReadPixels`); the
    /// tag is embedded into the frame pixels here.
    Hook6,
    /// Interposer: frame posted to the proxy (`XShmPutImage`/`glMapBuffer`).
    Hook7,
    /// Server proxy: receives the tagged frame, extracts the tag, restores
    /// the pixels.
    Hook8,
    /// Server proxy: compressed frame sent to the client.
    Hook9,
    /// Client proxy: frame received and matched with its input.
    Hook10,
}

impl HookSite {
    /// All hook sites in order.
    pub const ALL: [HookSite; 10] = [
        HookSite::Hook1,
        HookSite::Hook2,
        HookSite::Hook3,
        HookSite::Hook4,
        HookSite::Hook5,
        HookSite::Hook6,
        HookSite::Hook7,
        HookSite::Hook8,
        HookSite::Hook9,
        HookSite::Hook10,
    ];

    /// The API calls intercepted at this site (Table 1); empty for proxy
    /// sites that are patched directly in proxy source.
    pub fn intercepted_calls(&self) -> &'static [ApiCall] {
        match self {
            HookSite::Hook4 => &[ApiCall::XNextEvent, ApiCall::GlutKeyboardFunc],
            HookSite::Hook5 => &[ApiCall::GlxSwapBuffers, ApiCall::GlutSwapBuffers],
            HookSite::Hook6 => &[ApiCall::GlReadBuffer, ApiCall::GlReadPixels],
            HookSite::Hook7 => &[ApiCall::XShmPutImage, ApiCall::GlMapBuffer],
            _ => &[],
        }
    }

    /// Whether the site lives in a proxy (patched source) rather than an
    /// interposed API (no app modification needed either way).
    pub fn in_proxy(&self) -> bool {
        matches!(
            self,
            HookSite::Hook1
                | HookSite::Hook2
                | HookSite::Hook3
                | HookSite::Hook8
                | HookSite::Hook9
                | HookSite::Hook10
        )
    }
}

/// The hook sites that witnessed a record, in Fig 4 terms.
pub fn hooks_for_record(record: &Record) -> Vec<HookSite> {
    match record {
        Record::InputSent { .. } => vec![HookSite::Hook1],
        Record::InputConsumed { .. } => vec![HookSite::Hook4],
        Record::FrameTagged { .. } => vec![HookSite::Hook6],
        Record::FrameDisplayed { .. } => vec![HookSite::Hook10],
        Record::FrameDropped { .. } => vec![],
        Record::Span(span) => match span.stage {
            Stage::Cs => vec![HookSite::Hook2],
            Stage::Sp => vec![HookSite::Hook2, HookSite::Hook3],
            Stage::Ps => vec![HookSite::Hook3, HookSite::Hook4],
            Stage::Al => vec![HookSite::Hook4, HookSite::Hook5],
            Stage::Rd => vec![HookSite::Hook5, HookSite::Hook6],
            Stage::Fc => vec![HookSite::Hook6, HookSite::Hook7],
            Stage::As => vec![HookSite::Hook7, HookSite::Hook8],
            Stage::Cp => vec![HookSite::Hook8, HookSite::Hook9],
            Stage::Ss => vec![HookSite::Hook9, HookSite::Hook10],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pictor_gfx::Tag;
    use pictor_render::records::StageSpan;
    use pictor_sim::SimTime;

    #[test]
    fn ten_hooks() {
        assert_eq!(HookSite::ALL.len(), 10);
    }

    #[test]
    fn table1_mappings() {
        assert!(HookSite::Hook4
            .intercepted_calls()
            .contains(&ApiCall::XNextEvent));
        assert!(HookSite::Hook5
            .intercepted_calls()
            .contains(&ApiCall::GlxSwapBuffers));
        assert!(HookSite::Hook6
            .intercepted_calls()
            .contains(&ApiCall::GlReadPixels));
        assert!(HookSite::Hook7
            .intercepted_calls()
            .contains(&ApiCall::XShmPutImage));
        // Proxy hooks intercept no app-side API.
        assert!(HookSite::Hook1.intercepted_calls().is_empty());
    }

    #[test]
    fn proxy_classification() {
        let proxy_count = HookSite::ALL.iter().filter(|h| h.in_proxy()).count();
        assert_eq!(proxy_count, 6, "hooks 1-3 and 8-10 live in proxies");
        assert!(!HookSite::Hook5.in_proxy());
    }

    #[test]
    fn record_mapping_covers_tracking_endpoints() {
        let sent = Record::InputSent {
            instance: 0,
            tag: Tag(1),
            time: SimTime::ZERO,
        };
        assert_eq!(hooks_for_record(&sent), vec![HookSite::Hook1]);
        let span = Record::Span(StageSpan {
            instance: 0,
            stage: Stage::Ss,
            frame: Some(1),
            tag: None,
            start: SimTime::ZERO,
            end: SimTime::ZERO,
        });
        assert!(hooks_for_record(&span).contains(&HookSite::Hook10));
    }
}
