//! Criterion micro-benchmarks over the reproduction's hot paths: the
//! simulation kernel, tag embedding, frame compression, neural-network
//! inference and a full pipeline second.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use pictor_apps::{AppId, HumanPolicy, World};
use pictor_bench::fixtures::{conv_d_out, conv_fixture, lstm_d_h, lstm_fixture};
use pictor_client::ic::{IcTrainConfig, IntelligentClient};
use pictor_gfx::{embed_tag, extract_tag, CompressionModel, Tag};
use pictor_ml::Scratch;
use pictor_render::{CloudSystem, HumanDriver, SystemConfig};
use pictor_sim::{EventQueue, SeedTree, SimDuration, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        });
    });
}

fn bench_tag_embedding(c: &mut Criterion) {
    let mut world = World::new(AppId::Dota2, SeedTree::new(1).stream("w"));
    world.advance(1.0);
    let frame = world.render();
    c.bench_function("tag_embed_extract_restore", |b| {
        b.iter_batched(
            || frame.clone(),
            |mut f| {
                let saved = embed_tag(&mut f, Tag(0xABCD));
                let tag = extract_tag(&f);
                pictor_gfx::restore_pixels(&mut f, &saved);
                tag
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_compression(c: &mut Criterion) {
    let mut world = World::new(AppId::SuperTuxKart, SeedTree::new(2).stream("w"));
    world.advance(1.0);
    let prev = world.render();
    world.advance(1.0 / 30.0);
    let next = world.render();
    let model = CompressionModel::tight_encoding();
    c.bench_function("compress_frame_delta", |b| {
        b.iter(|| model.compress(&next, Some(&prev)));
    });
}

fn bench_world_step(c: &mut Criterion) {
    c.bench_function("world_advance_and_render", |b| {
        b.iter_batched(
            || World::new(AppId::Dota2, SeedTree::new(3).stream("w")),
            |mut w| {
                for _ in 0..30 {
                    w.advance(1.0 / 30.0);
                }
                w.render()
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_human_policy(c: &mut Criterion) {
    let mut world = World::new(AppId::RedEclipse, SeedTree::new(4).stream("w"));
    for _ in 0..60 {
        world.advance(0.1);
    }
    let truth = world.ground_truth();
    c.bench_function("human_policy_decide", |b| {
        let mut policy = HumanPolicy::new(AppId::RedEclipse, SeedTree::new(4).stream("h"));
        b.iter(|| policy.decide(&truth));
    });
}

fn bench_conv_forward(c: &mut Criterion) {
    let (conv, x) = conv_fixture();
    let mut ws = Scratch::new();
    c.bench_function("conv_forward_cells_b32", |b| {
        b.iter(|| conv.infer(&x, &mut ws));
    });
    c.bench_function("conv_forward_cells_b32_reference", |b| {
        b.iter(|| conv.infer_reference(&x));
    });
}

fn bench_conv_backward(c: &mut Criterion) {
    let (mut conv, x) = conv_fixture();
    let mut ws = Scratch::new();
    let d_out = conv_d_out();
    c.bench_function("conv_train_step_b32", |b| {
        b.iter(|| {
            let y = conv.forward(&x, &mut ws);
            let dx = conv.backward(&d_out, &mut ws);
            (y.data()[0], dx.data()[0])
        });
    });
}

fn bench_lstm_seq(c: &mut Criterion) {
    let (mut lstm, xs) = lstm_fixture();
    let mut ws = Scratch::new();
    c.bench_function("lstm_infer_seq_t6_b16", |b| {
        b.iter(|| lstm.infer(&xs, &mut ws));
    });
    c.bench_function("lstm_infer_seq_t6_b16_reference", |b| {
        b.iter(|| lstm.infer_reference(&xs));
    });
    let d_h = lstm_d_h();
    c.bench_function("lstm_train_seq_t6_b16", |b| {
        b.iter(|| {
            let h = lstm.forward(&xs, &mut ws);
            let dxs = lstm.backward(&d_h, &mut ws);
            (h.data()[0], dxs[0].data()[0])
        });
    });
}

fn bench_ic_inference(c: &mut Criterion) {
    let seeds = SeedTree::new(5);
    let mut ic = IntelligentClient::train(AppId::RedEclipse, &seeds, IcTrainConfig::fast());
    let mut world = World::new(AppId::RedEclipse, seeds.stream("w"));
    world.advance(2.0);
    let frame = world.render();
    c.bench_function("ic_decide_full_frame", |b| {
        b.iter(|| ic.decide(&frame));
    });
}

fn bench_pipeline_second(c: &mut Criterion) {
    c.bench_function("pipeline_one_simulated_second", |b| {
        b.iter_batched(
            || {
                let seeds = SeedTree::new(6);
                let mut sys = CloudSystem::new(SystemConfig::turbovnc_stock(), seeds);
                sys.add_instance(
                    AppId::Dota2,
                    Box::new(HumanDriver::new(
                        HumanPolicy::new(AppId::Dota2, seeds.stream("h")),
                        seeds.stream("attn"),
                    )),
                );
                sys.start();
                sys
            },
            |mut sys| {
                sys.run_for(SimDuration::from_secs(1));
                sys.now()
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_event_queue, bench_tag_embedding, bench_compression,
              bench_world_step, bench_human_policy, bench_conv_forward,
              bench_conv_backward, bench_lstm_seq, bench_ic_inference,
              bench_pipeline_second
}
criterion_main!(benches);
