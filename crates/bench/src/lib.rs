//! Shared helpers for the figure/table regenerator binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure from the
//! paper's evaluation: it runs the same experiment protocol (§4) on the
//! simulated system and prints the same rows/series the paper plots. Run
//! them with `cargo run --release -p pictor-bench --bin <name>`.
//!
//! Environment knobs (all optional):
//!
//! * `PICTOR_SECS` — measured simulated seconds per experiment (default 20).
//! * `PICTOR_SEED` — master seed (default 2020, the paper's year).

use pictor_apps::AppId;
use pictor_core::{run_experiment, ExperimentResult, ExperimentSpec};
use pictor_render::SystemConfig;
use pictor_sim::SimDuration;

/// Measured window length per experiment.
pub fn measured_secs() -> u64 {
    std::env::var("PICTOR_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
}

/// Master seed for all binaries.
pub fn master_seed() -> u64 {
    std::env::var("PICTOR_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2020)
}

/// Runs `n` co-located instances of `app` with human drivers.
pub fn run_humans(app: AppId, n: usize, config: SystemConfig, seed: u64) -> ExperimentResult {
    run_experiment(ExperimentSpec {
        duration: SimDuration::from_secs(measured_secs()),
        ..ExperimentSpec::with_humans(vec![app; n], config, seed)
    })
}

/// Runs an arbitrary mix of apps with human drivers.
pub fn run_mix(apps: Vec<AppId>, config: SystemConfig, seed: u64) -> ExperimentResult {
    run_experiment(ExperimentSpec {
        duration: SimDuration::from_secs(measured_secs()),
        ..ExperimentSpec::with_humans(apps, config, seed)
    })
}

/// Prints a figure banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
    println!(
        "(simulated reproduction; seed {}, {} s measured window)\n",
        master_seed(),
        measured_secs()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_without_env() {
        // Only checks the parsing defaults; env may be set by the harness.
        if std::env::var("PICTOR_SECS").is_err() {
            assert_eq!(measured_secs(), 20);
        }
        if std::env::var("PICTOR_SEED").is_err() {
            assert_eq!(master_seed(), 2020);
        }
    }

    #[test]
    fn run_humans_smoke() {
        std::env::set_var("PICTOR_SECS", "5");
        let result = run_humans(
            AppId::RedEclipse,
            1,
            SystemConfig::turbovnc_stock(),
            master_seed(),
        );
        assert_eq!(result.instances.len(), 1);
        std::env::remove_var("PICTOR_SECS");
    }
}
