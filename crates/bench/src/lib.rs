//! Shared infrastructure for the figure/table regenerator binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure from the
//! paper's evaluation by declaring a [`ScenarioGrid`] (its module lives
//! under [`figures`]) and rendering the resulting
//! [`SuiteReport`](pictor_core::SuiteReport). The grid executes its cells
//! in parallel across OS threads; results are bit-identical regardless of
//! thread count. Run binaries with
//! `cargo run --release -p pictor-bench --bin <name>`.
//!
//! Environment knobs (all optional):
//!
//! * `PICTOR_SECS` — measured simulated seconds per experiment (default 20).
//! * `PICTOR_SEED` — master seed (default 2020, the paper's year).
//! * `PICTOR_THREADS` — worker threads (default: available parallelism).
//! * `PICTOR_REPORT_DIR` — when set, every suite additionally writes
//!   `<dir>/<suite>.json` and `<dir>/<suite>.csv`.

pub mod figures;
pub mod fixtures;

use pictor_core::suite::default_threads;
use pictor_core::{FleetGrid, FleetSuiteReport, ScenarioGrid, SuiteReport};

/// Measured window length per experiment.
pub fn measured_secs() -> u64 {
    std::env::var("PICTOR_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
}

/// Master seed for all binaries.
pub fn master_seed() -> u64 {
    std::env::var("PICTOR_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2020)
}

/// Prints a figure banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
    println!(
        "(simulated reproduction; seed {}, {} s measured window, {} threads)\n",
        master_seed(),
        measured_secs(),
        default_threads()
    );
}

/// Runs a grid on the configured thread pool, exports the unified report
/// when `PICTOR_REPORT_DIR` is set, and fails hard on any non-finite
/// metric — the figure-smoke CI job relies on that panic.
///
/// # Panics
///
/// Panics if the report contains NaN/infinite metrics or an export write
/// fails.
pub fn run_suite(grid: ScenarioGrid) -> SuiteReport {
    let report = grid.run();
    export_report(report.name(), || report.to_json(), || report.to_csv());
    report.assert_finite();
    report
}

/// Fleet-grid counterpart of [`run_suite`]: runs the grid, exports the
/// unified report when `PICTOR_REPORT_DIR` is set, and fails hard on any
/// non-finite metric.
///
/// # Panics
///
/// Panics if the report contains NaN/infinite metrics or an export write
/// fails.
pub fn run_fleet_suite(grid: FleetGrid) -> FleetSuiteReport {
    let report = grid.run();
    export_report(report.name(), || report.to_json(), || report.to_csv());
    report.assert_finite();
    report
}

/// Writes `<dir>/<name>.{json,csv}` when `PICTOR_REPORT_DIR` is set; the
/// emitters are closures so reports are only serialized when exporting.
fn export_report(name: &str, json: impl FnOnce() -> String, csv: impl FnOnce() -> String) {
    let Ok(dir) = std::env::var("PICTOR_REPORT_DIR") else {
        return;
    };
    let dir = std::path::Path::new(&dir);
    std::fs::create_dir_all(dir).expect("create PICTOR_REPORT_DIR");
    let write = |ext: &str, body: String| {
        let path = dir.join(format!("{name}.{ext}"));
        std::fs::write(&path, body).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    };
    write("json", json());
    write("csv", csv());
}

#[cfg(test)]
mod tests {
    use super::*;
    use pictor_apps::AppId;

    #[test]
    fn defaults_without_env() {
        // Only checks the parsing defaults; env may be set by the harness.
        if std::env::var("PICTOR_SECS").is_err() {
            assert_eq!(measured_secs(), 20);
        }
        if std::env::var("PICTOR_SEED").is_err() {
            assert_eq!(master_seed(), 2020);
        }
    }

    #[test]
    fn run_suite_exports_and_validates() {
        // Per-process dir: concurrent `cargo test` invocations must not
        // race on each other's exports.
        let dir = std::env::temp_dir().join(format!("pictor-run-suite-{}", std::process::id()));
        std::env::set_var("PICTOR_REPORT_DIR", &dir);
        let report = run_suite(
            ScenarioGrid::new("smoke_suite", 4)
                .duration_secs(1)
                .solo(AppId::RedEclipse),
        );
        std::env::remove_var("PICTOR_REPORT_DIR");
        assert_eq!(report.cells().len(), 1);
        let json = std::fs::read_to_string(dir.join("smoke_suite.json")).expect("json exported");
        assert!(json.contains("\"suite\": \"smoke_suite\""));
        assert!(dir.join("smoke_suite.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
