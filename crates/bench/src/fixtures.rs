//! Shared ML hot-loop fixtures for the criterion microbenches and the
//! perf-trajectory reporter (`perf_report`).
//!
//! Both surfaces report under the same benchmark names
//! (`conv_forward_cells_b32`, `lstm_seq_t6_b16`, …), so they must measure
//! the *same* workload — shapes, seeds and fill patterns live here once.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use pictor_ml::{Conv2d, Lstm, Matrix, Tensor4};

/// Vision-shaped conv batch: 32 cells of 3×6×8, 3→6 channels, k=3.
pub fn conv_fixture() -> (Conv2d, Tensor4) {
    let mut rng = SmallRng::seed_from_u64(7);
    let conv = Conv2d::new(3, 6, 3, &mut rng);
    let x = Tensor4::from_vec(
        32,
        3,
        6,
        8,
        (0..32 * 3 * 6 * 8)
            .map(|i| ((i * 37 % 255) as f64) / 255.0 - 0.5)
            .collect(),
    );
    (conv, x)
}

/// Output gradient matching [`conv_fixture`]'s forward shape.
pub fn conv_d_out() -> Tensor4 {
    Tensor4::from_vec(
        32,
        6,
        6,
        8,
        (0..32 * 6 * 6 * 8)
            .map(|i| ((i * 13 % 101) as f64 - 50.0) / 500.0)
            .collect(),
    )
}

/// Agent-shaped LSTM sequence: 6 steps, batch 16, 13 features, hidden 24.
pub fn lstm_fixture() -> (Lstm, Vec<Matrix>) {
    let mut rng = SmallRng::seed_from_u64(8);
    let lstm = Lstm::new(13, 24, &mut rng);
    let xs = (0..6).map(|_| Matrix::xavier(16, 13, &mut rng)).collect();
    (lstm, xs)
}

/// Final-hidden-state gradient matching [`lstm_fixture`]'s shape.
pub fn lstm_d_h() -> Matrix {
    let mut rng = SmallRng::seed_from_u64(9);
    Matrix::xavier(16, 24, &mut rng)
}

/// Panics if any value in `values` is non-finite — the perf surfaces run
/// this over their benched outputs so CI perf-smoke fails on numeric
/// corruption, not just on panics.
pub fn assert_all_finite(name: &str, values: &[f64]) {
    for (i, v) in values.iter().enumerate() {
        assert!(v.is_finite(), "{name}: non-finite output at index {i}: {v}");
    }
}
