use pictor_apps::AppId;
use pictor_bench::run_humans;
use pictor_render::records::Stage;
use pictor_render::SystemConfig;

fn main() {
    for (name, config) in [
        ("stock", SystemConfig::turbovnc_stock()),
        ("opt", SystemConfig::optimized()),
    ] {
        let r = run_humans(AppId::RedEclipse, 1, config, 2020);
        let m = r.solo();
        println!(
            "{name}: rtt mean {:.1} p99 {:.1} | wait {:.1} app {:.1} | stages:",
            m.rtt.mean, m.rtt.p99, m.queue_wait_ms, m.app_time_ms
        );
        for s in Stage::ALL {
            print!("  {}={:.2}", s.label(), m.stage_ms(s));
        }
        println!(
            "\n  server_fps {:.1} client_fps {:.1} dropped {} inputs {}",
            m.report.server_fps, m.report.client_fps, m.report.frames_dropped, m.report.inputs_sent
        );
    }
}
