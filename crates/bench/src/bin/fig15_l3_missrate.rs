//! Fig 15: L3 cache miss rates for 1–4 instances.

use pictor_bench::figures::fig15;
use pictor_bench::{banner, master_seed, measured_secs, run_suite};

fn main() {
    banner("Figure 15: L3 miss rates for 1-4 instances");
    let report = run_suite(fig15::grid(measured_secs(), master_seed()));
    print!("{}", fig15::render(&report));
}
