//! Fig 15: L3 cache miss rates for 1–4 instances of each benchmark.
//!
//! Paper reference: above 70% even solo (uncached CPU↔GPU communication
//! buffers), rising considerably with co-location.

use pictor_apps::AppId;
use pictor_bench::{banner, master_seed, run_humans};
use pictor_core::report::{fmt, Table};
use pictor_render::SystemConfig;

fn main() {
    banner("Figure 15: L3 miss rates for 1-4 instances");
    let mut table = Table::new(
        ["app", "n=1", "n=2", "n=3", "n=4"]
            .map(String::from)
            .to_vec(),
    );
    for app in AppId::ALL {
        let mut cells = vec![app.code().to_string()];
        for n in 1..=4usize {
            let result = run_humans(
                app,
                n,
                SystemConfig::turbovnc_stock(),
                master_seed() ^ n as u64,
            );
            cells.push(format!(
                "{}%",
                fmt(result.instances[0].report.l3_miss_rate * 100.0, 1)
            ));
        }
        table.row(cells);
    }
    println!("{}", table.render());
    println!("Paper: >70% solo, rising with instance count.");
}
