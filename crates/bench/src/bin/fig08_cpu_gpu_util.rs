//! Fig 8: CPU and GPU utilization per benchmark (single instance), plus the
//! VNC proxy's CPU and the memory footprints discussed in §5.1.1.
//!
//! Paper reference: app CPU 68%–266%, VNC CPU 169%–243%, GPU 22%–53%,
//! memory 600 MB (D2) – ~4 GB (IM), GPU memory below 800 MB.

use pictor_apps::AppId;
use pictor_bench::{banner, master_seed, run_humans};
use pictor_core::report::{fmt, Table};
use pictor_render::SystemConfig;

fn main() {
    banner("Figure 8: CPU/GPU utilization per benchmark (one instance)");
    let mut table = Table::new(
        [
            "app",
            "app CPU%",
            "VNC CPU%",
            "GPU%",
            "mem MiB",
            "GPU mem MiB",
        ]
        .map(String::from)
        .to_vec(),
    );
    for app in AppId::ALL {
        let result = run_humans(app, 1, SystemConfig::turbovnc_stock(), master_seed());
        let r = &result.solo().report;
        table.row(vec![
            app.code().into(),
            fmt(r.app_cpu * 100.0, 0),
            fmt(r.vnc_cpu * 100.0, 0),
            fmt(r.gpu_util * 100.0, 0),
            r.memory_mib.to_string(),
            r.gpu_memory_mib.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("Paper: app CPU 68-266%, VNC CPU 169-243%, GPU 22-53%.");
}
