//! Fig 8: CPU/GPU utilization per benchmark (single instance).

use pictor_bench::figures::fig08;
use pictor_bench::{banner, master_seed, measured_secs, run_suite};

fn main() {
    banner("Figure 8: CPU/GPU utilization per benchmark (one instance)");
    let report = run_suite(fig08::grid(measured_secs(), master_seed()));
    print!("{}", fig08::render(&report));
}
