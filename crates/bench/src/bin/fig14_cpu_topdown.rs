//! Fig 14: Top-Down CPU cycle breakdown for 1–4 instances.

use pictor_bench::figures::fig14;
use pictor_bench::{banner, master_seed, measured_secs, run_suite};

fn main() {
    banner("Figure 14: Top-Down CPU cycle breakdown for 1-4 instances");
    let report = run_suite(fig14::grid(measured_secs(), master_seed()));
    print!("{}", fig14::render(&report));
}
