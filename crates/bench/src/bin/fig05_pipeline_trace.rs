//! Fig 5 / Fig 21: a textual trace of the software pipeline, showing how
//! stages of consecutive frames overlap — and how the §6 two-step copy
//! changes the schedule.
//!
//! For a short window, prints each frame's AL/RD/FC/AS/CP/SS intervals in
//! milliseconds so the pipeline structure (AL+FC on one thread, RD parallel
//! on the GPU, proxy stages downstream) is directly visible.

use pictor_apps::{AppId, HumanPolicy};
use pictor_bench::{banner, master_seed};
use pictor_render::records::{Record, Stage};
use pictor_render::{CloudSystem, HumanDriver, SystemConfig};
use pictor_sim::{SeedTree, SimDuration};

fn trace(label: &str, config: SystemConfig) {
    let app = AppId::SuperTuxKart;
    let seeds = SeedTree::new(master_seed());
    let mut sys = CloudSystem::new(config, seeds);
    sys.add_instance(
        app,
        Box::new(HumanDriver::new(
            HumanPolicy::new(app, seeds.stream("h")),
            seeds.stream("attn"),
        )),
    );
    sys.start();
    sys.run_for(SimDuration::from_secs(3));
    sys.reset_accounting();
    let t0 = sys.now();
    sys.run_for(SimDuration::from_millis(120));
    let records = sys.drain_records();
    println!("--- {label}: SuperTuxKart, ~120 ms window, times in ms since window start ---");
    println!(
        "{:>5} {:>13} {:>13} {:>13} {:>13} {:>13} {:>13}",
        "frame", "AL", "RD", "FC", "AS", "CP", "SS"
    );
    let mut frames: std::collections::BTreeMap<u64, [Option<(f64, f64)>; 6]> =
        std::collections::BTreeMap::new();
    for r in &records {
        let Record::Span(span) = r else { continue };
        let Some(frame) = span.frame else { continue };
        let idx = match span.stage {
            Stage::Al => 0,
            Stage::Rd => 1,
            Stage::Fc => 2,
            Stage::As => 3,
            Stage::Cp => 4,
            Stage::Ss => 5,
            _ => continue,
        };
        let start = span.start.saturating_since(t0).as_millis_f64();
        let end = span.end.saturating_since(t0).as_millis_f64();
        frames.entry(frame).or_default()[idx] = Some((start, end));
    }
    let cell = |v: Option<(f64, f64)>| match v {
        Some((s, e)) => format!("{s:5.1}-{e:5.1}"),
        None => "-".to_string(),
    };
    for (frame, stages) in frames.iter().take(6) {
        println!(
            "{:>5} {:>13} {:>13} {:>13} {:>13} {:>13} {:>13}",
            frame,
            cell(stages[0]),
            cell(stages[1]),
            cell(stages[2]),
            cell(stages[3]),
            cell(stages[4]),
            cell(stages[5]),
        );
    }
    println!();
}

fn main() {
    banner("Figure 5/21: software-pipeline stage timeline");
    trace("stock TurboVNC (Fig 5)", SystemConfig::turbovnc_stock());
    trace(
        "optimized two-step copy (Fig 21)",
        SystemConfig::optimized(),
    );
    println!("Read each row left to right: while frame k renders on the GPU (RD),");
    println!("the logic thread copies frame k-1 (FC) — stock blocks in the copy;");
    println!("optimized, the copy spans two passes and AL packs tighter.");
}
