//! Fig 5 / Fig 21: textual pipeline-stage timeline, stock vs optimized.

use pictor_bench::figures::fig05;
use pictor_bench::{banner, master_seed, run_suite};

fn main() {
    banner("Figure 5/21: software-pipeline stage timeline");
    let report = run_suite(fig05::grid(master_seed()));
    print!("{}", fig05::render(&report));
}
