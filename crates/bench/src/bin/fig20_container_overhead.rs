//! Fig 20: containerization overheads vs bare metal.

use pictor_bench::figures::fig20;
use pictor_bench::{banner, master_seed, measured_secs, run_suite};

fn main() {
    banner("Figure 20: container overheads (server FPS, RTT, GPU render)");
    let report = run_suite(fig20::grid(measured_secs(), master_seed()));
    print!("{}", fig20::render(&report));
}
