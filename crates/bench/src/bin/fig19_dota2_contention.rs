//! Fig 19: Dota2 under each co-runner.

use pictor_bench::figures::fig19;
use pictor_bench::{banner, master_seed, measured_secs, run_suite};

fn main() {
    banner("Figure 19: Dota2 under each co-runner");
    let report = run_suite(fig19::grid(measured_secs(), master_seed()));
    print!("{}", fig19::render(&report));
}
