//! Fig 19: Dota2's performance loss and cache-miss increases when co-running
//! with each other benchmark.
//!
//! Paper reference: contentiousness varies a lot — SuperTuxKart hurts Dota2
//! the most, 0AD the least; CPU-cache and GPU-cache contentiousness
//! correlate.

use pictor_apps::AppId;
use pictor_bench::{banner, master_seed, run_humans, run_mix};
use pictor_core::report::{fmt, Table};
use pictor_render::SystemConfig;

fn main() {
    banner("Figure 19: Dota2 under each co-runner");
    let solo = run_humans(
        AppId::Dota2,
        1,
        SystemConfig::turbovnc_stock(),
        master_seed(),
    );
    let solo_fps = solo.solo().report.client_fps;
    let solo_l3 = solo.solo().report.l3_miss_rate;
    let solo_gl2 = solo.solo().report.gpu_l2_miss_rate;
    let mut table = Table::new(
        [
            "co-runner",
            "D2 fps loss%",
            "L3 miss +pts",
            "GPU L2 miss +pts",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut rows: Vec<(AppId, f64)> = Vec::new();
    for co in AppId::ALL {
        if co == AppId::Dota2 {
            continue;
        }
        let result = run_mix(
            vec![AppId::Dota2, co],
            SystemConfig::turbovnc_stock(),
            master_seed() ^ co.index() as u64,
        );
        let d2 = &result.instances[0].report;
        let loss = (1.0 - d2.client_fps / solo_fps) * 100.0;
        rows.push((co, loss));
        table.row(vec![
            co.code().into(),
            fmt(loss, 1),
            fmt((d2.l3_miss_rate - solo_l3) * 100.0, 1),
            fmt((d2.gpu_l2_miss_rate - solo_gl2) * 100.0, 1),
        ]);
    }
    println!("{}", table.render());
    let worst = rows
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("rows");
    let best = rows
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("rows");
    println!(
        "Highest contention from {} ({:.1}% loss), least from {} ({:.1}%).",
        worst.0.code(),
        worst.1,
        best.0.code(),
        best.1
    );
    println!("Paper: STK causes the most contention, 0AD the least; CPU and GPU");
    println!("cache contentiousness correlate.");
}
