//! Fig 22 / §6: the optimized frame copy, headline gains plus ablation.

use pictor_bench::figures::fig22;
use pictor_bench::{banner, master_seed, measured_secs, run_suite};

fn main() {
    banner("Figure 22: optimized frame copy (server FPS / client FPS / RTT)");
    let report = run_suite(fig22::grid(measured_secs(), master_seed()));
    print!("{}", fig22::render(&report));
}
