//! Fig 22 / §6: the two frame-copy optimizations — memoized
//! `XGetWindowAttributes` and the two-step asynchronous copy — applied to
//! stock TurboVNC, per benchmark, plus an ablation of each alone.
//!
//! Paper reference: server FPS +57.7% average (max +115.2%), client FPS
//! +7.4% average (max +19.5%), RTT −8.5% average (max −15.1%); ITP's client
//! FPS dips ~3% from extra proxy contention.

use pictor_apps::AppId;
use pictor_bench::{banner, master_seed, run_humans};
use pictor_core::report::{fmt, Table};
use pictor_gfx::InterposerConfig;
use pictor_render::SystemConfig;

fn main() {
    banner("Figure 22: optimized frame copy (server FPS / client FPS / RTT)");
    let mut table = Table::new(
        [
            "app",
            "srv FPS stock",
            "srv FPS opt",
            "srv gain%",
            "cli gain%",
            "RTT change%",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut gains = (0.0, 0.0, 0.0);
    for app in AppId::ALL {
        let stock = run_humans(app, 1, SystemConfig::turbovnc_stock(), master_seed());
        let opt = run_humans(app, 1, SystemConfig::optimized(), master_seed());
        let s = stock.solo();
        let o = opt.solo();
        let srv = (o.report.server_fps / s.report.server_fps - 1.0) * 100.0;
        let cli = (o.report.client_fps / s.report.client_fps - 1.0) * 100.0;
        let rtt = (o.rtt.mean / s.rtt.mean - 1.0) * 100.0;
        gains.0 += srv;
        gains.1 += cli;
        gains.2 += rtt;
        table.row(vec![
            app.code().into(),
            fmt(s.report.server_fps, 1),
            fmt(o.report.server_fps, 1),
            fmt(srv, 1),
            fmt(cli, 1),
            fmt(rtt, 1),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Average: server FPS {:+.1}%, client FPS {:+.1}%, RTT {:+.1}%.",
        gains.0 / 6.0,
        gains.1 / 6.0,
        gains.2 / 6.0
    );
    println!("Paper: server +57.7% avg (max +115.2%), client +7.4%, RTT -8.5%.\n");

    // Ablation: each optimization alone (DESIGN.md's ablation index).
    println!("--- Ablation: each optimization alone (server FPS gain %) ---");
    let mut ablation = Table::new(
        ["app", "memoize XGWA only", "async copy only", "both"]
            .map(String::from)
            .to_vec(),
    );
    for app in AppId::ALL {
        let stock = run_humans(app, 1, SystemConfig::turbovnc_stock(), master_seed());
        let base_fps = stock.solo().report.server_fps;
        let gain = |interposer: InterposerConfig| {
            let config = SystemConfig {
                interposer,
                ..SystemConfig::turbovnc_stock()
            };
            let r = run_humans(app, 1, config, master_seed());
            (r.solo().report.server_fps / base_fps - 1.0) * 100.0
        };
        ablation.row(vec![
            app.code().into(),
            fmt(gain(InterposerConfig::memoize_only()), 1),
            fmt(gain(InterposerConfig::async_copy_only()), 1),
            fmt(gain(InterposerConfig::optimized()), 1),
        ]);
    }
    println!("{}", ablation.render());
}
