//! Fig 11: RTT broken into input-network (CS), server processing, and
//! frame-network (SS) time, for 1–4 instances of each benchmark.
//!
//! Paper reference: CS below 10 ms; SS 14–35 ms; server time 61–106 ms solo
//! and the dominant, growing component under co-location.

use pictor_apps::AppId;
use pictor_bench::{banner, master_seed, run_humans};
use pictor_core::report::{fmt, Table};
use pictor_render::records::Stage;
use pictor_render::SystemConfig;

fn main() {
    banner("Figure 11: RTT breakdown (CS / server / SS) for 1-4 instances");
    let mut table = Table::new(
        ["app", "n", "RTT ms", "CS ms", "server ms", "SS ms"]
            .map(String::from)
            .to_vec(),
    );
    for app in AppId::ALL {
        for n in 1..=4usize {
            let result = run_humans(
                app,
                n,
                SystemConfig::turbovnc_stock(),
                master_seed() ^ n as u64,
            );
            let m = &result.instances[0];
            table.row(vec![
                app.code().into(),
                n.to_string(),
                fmt(m.rtt.mean, 1),
                fmt(m.stage_ms(Stage::Cs), 1),
                fmt(m.server_time_ms, 1),
                fmt(m.stage_ms(Stage::Ss), 1),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Paper: CS < 10 ms, SS 14-35 ms, server 61-106 ms solo and dominant.");
}
