//! Fig 11: RTT breakdown (CS / server / SS) for 1–4 instances.

use pictor_bench::figures::fig11;
use pictor_bench::{banner, master_seed, measured_secs, run_suite};

fn main() {
    banner("Figure 11: RTT breakdown (CS / server / SS) for 1-4 instances");
    let report = run_suite(fig11::grid(measured_secs(), master_seed()));
    print!("{}", fig11::render(&report));
}
