//! Fig 7: CV and input-generation inference times per benchmark.

use pictor_bench::figures::fig07;
use pictor_bench::{banner, master_seed, run_suite};

fn main() {
    banner("Figure 7: CV and input-generation inference time per benchmark");
    let report = run_suite(fig07::grid(master_seed()));
    print!("{}", fig07::render(&report));
}
