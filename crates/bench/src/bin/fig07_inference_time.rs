//! Fig 7: computer-vision (CNN) and input-generation (RNN) inference times
//! per benchmark, plus the implied actions-per-minute capability.
//!
//! Paper reference: 72.7 ms average CV, 1.9 ms input generation, ~804 APM
//! (faster than professional players' ~300 APM).

use pictor_apps::AppId;
use pictor_bench::banner;
use pictor_client::InferenceCostModel;
use pictor_core::report::{fmt, Table};
use pictor_hw::ClientSpec;

fn main() {
    banner("Figure 7: CV and input-generation inference time per benchmark");
    let model = InferenceCostModel::new(ClientSpec::paper_client());
    let mut table = Table::new(
        ["app", "CV (ms)", "RNN (ms)", "max APM"]
            .map(String::from)
            .to_vec(),
    );
    let mut cv_sum = 0.0;
    let mut rnn_sum = 0.0;
    let mut apm_sum = 0.0;
    for app in AppId::ALL {
        let cv = model.cv_mean_ms(app);
        let rnn = model.rnn_mean_ms(app);
        let apm = model.max_apm(app);
        cv_sum += cv;
        rnn_sum += rnn;
        apm_sum += apm;
        table.row(vec![
            app.code().into(),
            fmt(cv, 1),
            fmt(rnn, 2),
            fmt(apm, 0),
        ]);
    }
    table.row(vec![
        "Avg".into(),
        fmt(cv_sum / 6.0, 1),
        fmt(rnn_sum / 6.0, 2),
        fmt(apm_sum / 6.0, 0),
    ]);
    println!("{}", table.render());
    println!("Paper: 72.7 ms avg CV, 1.9 ms avg input generation, ~804 APM.");
}
