//! §4 "Pictor Overhead Evaluation": instrumentation cost vs native.

use pictor_bench::figures::overhead;
use pictor_bench::{banner, master_seed, measured_secs, run_suite};

fn main() {
    banner("Pictor overhead: hooks + timer queries vs native TurboVNC");
    let report = run_suite(overhead::grid(measured_secs(), master_seed()));
    print!("{}", overhead::render(&report));
}
