//! §4 "Pictor Overhead Evaluation": FPS with and without the measurement
//! framework attached, and the effect of double-buffered GPU timer queries.
//!
//! Paper reference: 2.7% average FPS reduction (max 5%) with double
//! buffering; up to ~10% without it.

use pictor_apps::AppId;
use pictor_bench::{banner, master_seed, run_humans};
use pictor_core::report::{fmt, Table};
use pictor_render::config::{MeasurementConfig, QueryBuffers};
use pictor_render::SystemConfig;

fn main() {
    banner("Pictor overhead: hooks + timer queries vs native TurboVNC");
    let mut table = Table::new(
        ["app", "native FPS", "double-buf ovh%", "single-buf ovh%"]
            .map(String::from)
            .to_vec(),
    );
    let mut dsum = 0.0;
    let mut dmax: f64 = 0.0;
    let mut ssum = 0.0;
    for app in AppId::ALL {
        let native_config = SystemConfig {
            measurement: MeasurementConfig::disabled(),
            ..SystemConfig::turbovnc_stock()
        };
        let native = run_humans(app, 1, native_config, master_seed());
        let base = native.solo().report.server_fps;

        let double = run_humans(app, 1, SystemConfig::turbovnc_stock(), master_seed());
        let d_ovh = (1.0 - double.solo().report.server_fps / base) * 100.0;

        let single_config = SystemConfig {
            measurement: MeasurementConfig {
                query_buffers: QueryBuffers::Single,
                ..MeasurementConfig::pictor()
            },
            ..SystemConfig::turbovnc_stock()
        };
        let single = run_humans(app, 1, single_config, master_seed());
        let s_ovh = (1.0 - single.solo().report.server_fps / base) * 100.0;

        dsum += d_ovh;
        dmax = dmax.max(d_ovh);
        ssum += s_ovh;
        table.row(vec![
            app.code().into(),
            fmt(base, 1),
            fmt(d_ovh, 1),
            fmt(s_ovh, 1),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Average overhead: double-buffered {:.1}% (max {:.1}%), single-buffered {:.1}%.",
        dsum / 6.0,
        dmax,
        ssum / 6.0
    );
    println!("Paper: 2.7% avg (max 5%) with double buffering; up to 10% without.");
}
