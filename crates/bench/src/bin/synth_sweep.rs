//! Synthetic-workload sweep: generated applications solo and co-located
//! against the paper titles — the first workloads outside Table 2.

use pictor_bench::figures::synth;
use pictor_bench::{banner, master_seed, measured_secs, run_suite};

fn main() {
    banner("Synthetic sweep: generated apps solo and against STK/0AD");
    let report = run_suite(synth::grid(measured_secs(), master_seed()));
    print!("{}", synth::render(&report));
}
