//! Fig 12: server time broken into VNC input forwarding (PS), application
//! execution, frame handoff (AS) and compression (CP), for 1–4 instances.
//!
//! Paper reference: application execution dominates; PS/AS/CP stay below
//! 18 ms solo; the IPC stages (PS, AS) inflate up to +96% at 4 instances.

use pictor_apps::AppId;
use pictor_bench::{banner, master_seed, run_humans};
use pictor_core::report::{fmt, Table};
use pictor_render::records::Stage;
use pictor_render::SystemConfig;

fn main() {
    banner("Figure 12: server-time breakdown for 1-4 instances");
    let mut table = Table::new(
        ["app", "n", "SP ms", "PS ms", "app ms", "AS ms", "CP ms"]
            .map(String::from)
            .to_vec(),
    );
    for app in AppId::ALL {
        for n in 1..=4usize {
            let result = run_humans(
                app,
                n,
                SystemConfig::turbovnc_stock(),
                master_seed() ^ n as u64,
            );
            let m = &result.instances[0];
            table.row(vec![
                app.code().into(),
                n.to_string(),
                fmt(m.stage_ms(Stage::Sp), 2),
                fmt(m.stage_ms(Stage::Ps), 2),
                fmt(m.app_time_ms + m.queue_wait_ms, 1),
                fmt(m.stage_ms(Stage::As), 2),
                fmt(m.stage_ms(Stage::Cp), 1),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Paper: app execution dominates; PS/AS/CP < 18 ms solo; IPC stages");
    println!("inflate up to +96% at 4 instances.");
}
