//! Fig 12: server-time breakdown for 1–4 instances.

use pictor_bench::figures::fig12;
use pictor_bench::{banner, master_seed, measured_secs, run_suite};

fn main() {
    banner("Figure 12: server-time breakdown for 1-4 instances");
    let report = run_suite(fig12::grid(measured_secs(), master_seed()));
    print!("{}", fig12::render(&report));
}
