//! Fig 10: server and client FPS when running 1–4 instances of the same
//! benchmark on one server.
//!
//! Paper reference: all apps stay ≥25 client FPS at 2 instances; RE, IM and
//! ITP also at 3; the lowest solo client FPS is 27 (0AD).

use pictor_apps::AppId;
use pictor_bench::{banner, master_seed, run_humans};
use pictor_core::report::{fmt, Table};
use pictor_render::SystemConfig;

fn main() {
    banner("Figure 10: server/client FPS for 1-4 instances of each benchmark");
    let mut table = Table::new(
        ["app", "n", "server FPS", "client FPS", "dropped"]
            .map(String::from)
            .to_vec(),
    );
    for app in AppId::ALL {
        for n in 1..=4usize {
            let result = run_humans(
                app,
                n,
                SystemConfig::turbovnc_stock(),
                master_seed() ^ n as u64,
            );
            // Average across the co-located instances.
            let server: f64 = result
                .instances
                .iter()
                .map(|m| m.report.server_fps)
                .sum::<f64>()
                / n as f64;
            let client: f64 = result
                .instances
                .iter()
                .map(|m| m.report.client_fps)
                .sum::<f64>()
                / n as f64;
            let dropped: u64 = result
                .instances
                .iter()
                .map(|m| m.report.frames_dropped)
                .sum();
            table.row(vec![
                app.code().into(),
                n.to_string(),
                fmt(server, 1),
                fmt(client, 1),
                dropped.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Paper: ≥25 client FPS at 2 instances for all apps; at 3 for RE/IM/ITP.");
}
