//! Fig 10: server/client FPS for 1–4 instances of each benchmark.

use pictor_bench::figures::fig10;
use pictor_bench::{banner, master_seed, measured_secs, run_suite};

fn main() {
    banner("Figure 10: server/client FPS for 1-4 instances of each benchmark");
    let report = run_suite(fig10::grid(measured_secs(), master_seed()));
    print!("{}", fig10::render(&report));
}
