//! Fig 18 / §5.3.1: client FPS for all 15 pairs of different benchmarks,
//! plus the pair-vs-two-servers energy saving.
//!
//! Paper reference: 11 of 15 pairs stay above 25 client FPS; running a pair
//! on one server saves at least 37% energy versus two servers.

use pictor_apps::AppId;
use pictor_bench::{banner, master_seed, run_humans, run_mix};
use pictor_core::metrics::power_from_reports;
use pictor_core::report::{fmt, Table};
use pictor_hw::PowerModel;
use pictor_render::SystemConfig;

fn main() {
    banner("Figure 18: client FPS for the 15 mixed pairs");
    let model = PowerModel::paper_default();
    let mut table = Table::new(
        ["pair", "fps A", "fps B", "both ≥25?", "energy saving%"]
            .map(String::from)
            .to_vec(),
    );
    // Solo power per app (for the two-servers comparison).
    let mut solo_power = std::collections::HashMap::new();
    for app in AppId::ALL {
        let result = run_humans(app, 1, SystemConfig::turbovnc_stock(), master_seed());
        let reports: Vec<_> = result.instances.iter().map(|m| m.report.clone()).collect();
        solo_power.insert(app, power_from_reports(&model, &reports).total_watts);
    }
    let mut ok_pairs = 0;
    let mut total_pairs = 0;
    for (i, &a) in AppId::ALL.iter().enumerate() {
        for &b in AppId::ALL.iter().skip(i + 1) {
            total_pairs += 1;
            let result = run_mix(
                vec![a, b],
                SystemConfig::turbovnc_stock(),
                master_seed() ^ (total_pairs as u64) << 8,
            );
            let fps_a = result.instances[0].report.client_fps;
            let fps_b = result.instances[1].report.client_fps;
            let ok = fps_a >= 25.0 && fps_b >= 25.0;
            ok_pairs += usize::from(ok);
            let reports: Vec<_> = result.instances.iter().map(|m| m.report.clone()).collect();
            let pair_power = power_from_reports(&model, &reports).total_watts;
            let two_servers = solo_power[&a] + solo_power[&b];
            let saving = (1.0 - pair_power / two_servers) * 100.0;
            table.row(vec![
                format!("{}+{}", a.code(), b.code()),
                fmt(fps_a, 1),
                fmt(fps_b, 1),
                if ok { "yes" } else { "no" }.into(),
                fmt(saving, 1),
            ]);
        }
    }
    println!("{}", table.render());
    println!("{ok_pairs} of {total_pairs} pairs keep both apps at ≥25 client FPS.");
    println!("Paper: 11 of 15 pairs; energy saving ≥37% vs two servers.");
}
