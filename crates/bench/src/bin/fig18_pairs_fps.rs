//! Fig 18 / §5.3.1: client FPS and energy saving for the 15 mixed pairs.

use pictor_bench::figures::fig18;
use pictor_bench::{banner, master_seed, measured_secs, run_suite};

fn main() {
    banner("Figure 18: client FPS for the 15 mixed pairs");
    let report = run_suite(fig18::grid(measured_secs(), master_seed()));
    print!("{}", fig18::render(&report));
}
