//! Fig 17 / §5.2.1: per-instance power for 1–4 instances.

use pictor_bench::figures::fig17;
use pictor_bench::{banner, master_seed, measured_secs, run_suite};

fn main() {
    banner("Figure 17: per-instance power for 1-4 instances");
    let report = run_suite(fig17::grid(measured_secs(), master_seed()));
    print!("{}", fig17::render(&report));
}
