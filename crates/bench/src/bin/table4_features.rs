//! Table 4: feature comparison between Pictor and prior VDI / cloud-gaming
//! performance-analysis work.

use pictor_baselines::{Capability, Methodology};
use pictor_bench::banner;
use pictor_core::report::Table;

fn main() {
    banner("Table 4: Pictor vs prior work feature matrix");
    let mut header = vec!["Feature".to_string()];
    header.extend(Methodology::ALL.iter().map(|m| m.label().to_string()));
    let mut table = Table::new(header);
    for cap in Capability::ALL {
        let mut row = vec![cap.label().to_string()];
        for m in Methodology::ALL {
            row.push(if m.supports(cap) { "x" } else { "" }.to_string());
        }
        table.row(row);
    }
    println!("{}", table.render());
}
