//! Table 4: Pictor vs prior work feature matrix.

use pictor_bench::figures::table4;
use pictor_bench::{banner, master_seed, run_suite};

fn main() {
    banner("Table 4: Pictor vs prior work feature matrix");
    let report = run_suite(table4::grid(master_seed()));
    print!("{}", table4::render(&report));
}
