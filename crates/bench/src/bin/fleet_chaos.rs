//! Fleet engine under fault injection: the same heterogeneous fleet as
//! `fleet_scale`, but with a chaos plan live — scheduled drain-crashes,
//! stochastic crash/degrade/brownout hazards, and the recovery queue
//! re-placing orphaned sessions. A fault-free twin of the identical
//! configuration runs alongside so the report can price the damage:
//! goodput retained under chaos, recovery latency, downtime, and the
//! share of RTT violations attributable to injected brownouts.
//!
//! Default sizing is a small smoke fleet scaled by `PICTOR_SECS` (the CI
//! chaos-smoke runs it at 1); `--full` runs the headline configuration —
//! 600 servers in four GPU groups over 900 epochs — that produces the
//! committed `BENCH_08.json`. `--out PATH` writes the machine-readable
//! result (schema `pictor-fleet-chaos/v1`) to PATH in addition to
//! `PICTOR_REPORT_DIR/fleet_chaos.json`.

use std::sync::Arc;
use std::time::Instant;

use pictor_apps::AppId;
use pictor_bench::{banner, master_seed, measured_secs};
use pictor_core::fleet::{
    ArrivalConfig, AutoscaleConfig, BackpressureConfig, DataPlane, FaultEvent, FaultKind,
    FaultPlan, FaultStats, FirstFit, FleetEngine, FleetReport, FleetSpec, GroupSpec, Hazard,
    MigrationConfig, RecoveryConfig, WorkloadMix,
};
use pictor_core::suite::default_threads;
use pictor_hw::GpuModel;
use pictor_render::SystemConfig;

/// The four GPU groups of the fleet, lowest to highest throughput.
const GPUS: [GpuModel; 4] = [
    GpuModel::Gtx1060,
    GpuModel::TeslaT4,
    GpuModel::Rtx2080Ti,
    GpuModel::Rtx3090,
];

/// The chaos plan, scale-free by construction: hazards are per-server
/// per-epoch probabilities, so the injection *rate* tracks fleet size and
/// horizon, and the two scheduled faults hit fixed early servers that
/// exist at every sizing.
fn chaos_plan() -> FaultPlan {
    FaultPlan {
        scheduled: vec![
            FaultEvent {
                at_epoch: 4,
                server: 0,
                kind: FaultKind::Crash {
                    drain_epochs: 1,
                    restart_after_epochs: Some(3),
                    warmup_epochs: 2,
                },
            },
            FaultEvent {
                at_epoch: 6,
                server: 1,
                kind: FaultKind::GpuDegrade {
                    severity: 0.6,
                    recover_after_epochs: Some(8),
                },
            },
        ],
        hazards: vec![
            Hazard {
                per_server_epoch: 0.002,
                kind: FaultKind::Crash {
                    drain_epochs: 0,
                    restart_after_epochs: Some(3),
                    warmup_epochs: 1,
                },
            },
            Hazard {
                per_server_epoch: 0.003,
                kind: FaultKind::GpuDegrade {
                    severity: 0.5,
                    recover_after_epochs: Some(6),
                },
            },
            Hazard {
                per_server_epoch: 0.004,
                kind: FaultKind::NetBrownout {
                    rtt_factor: 2.0,
                    jitter_ms: 25.0,
                    duration_epochs: 4,
                },
            },
        ],
        recovery: RecoveryConfig::default(),
        ..FaultPlan::default()
    }
}

fn engine(per_group: usize, epochs: u64, faults: Option<FaultPlan>) -> FleetEngine {
    let base = SystemConfig::turbovnc_stock();
    let mix = WorkloadMix::uniform([AppId::Dota2, AppId::SuperTuxKart, AppId::ZeroAd]);
    let servers = per_group * GPUS.len();
    // Slightly below fleet_scale's oversubscription: open demand wants
    // ~100% of the fleet, so faults bite into a loaded system but crash
    // orphans still have a fighting chance at re-placement.
    let arrivals = ArrivalConfig {
        label: "chaos".into(),
        open_rate_per_sec: 0.5,
        closed_clients: 1,
        mean_session_secs: 8.0,
        mean_think_secs: 6.0,
    };
    let spec = FleetSpec::new(servers, mix, Arc::new(FirstFit), master_seed()).epochs(epochs);
    let mut eng = FleetEngine::from_spec(&spec);
    eng.groups = GPUS
        .iter()
        .map(|&gpu| GroupSpec::with_gpu(per_group, &base, gpu))
        .collect();
    eng.arrivals = arrivals;
    eng.data_plane = DataPlane::Surrogate;
    eng.shards = GPUS.len();
    eng.autoscale = Some(AutoscaleConfig {
        eval_every_epochs: 2,
        min_active_per_group: (per_group / 3).max(1),
        ..AutoscaleConfig::steady()
    });
    eng.migration = Some(MigrationConfig::contention_relief());
    // Wider lobby than fleet_scale: orphaned sessions re-enter placement
    // through this queue, and a queue pinned at its limit by ordinary
    // oversubscription would starve recovery into pure loss.
    eng.backpressure = Some(BackpressureConfig {
        queue_limit: (servers / 2).max(16),
        retry_after_epochs: 1,
    });
    eng.faults = faults;
    eng
}

fn to_json(
    chaos: &FleetReport,
    plain: &FleetReport,
    eng: &FleetEngine,
    full: bool,
    wall_ns: u128,
) -> String {
    let dynamics = chaos.dynamics.as_ref().expect("chaos engine is dynamic");
    let fl = dynamics.faults.as_ref().expect("fault ledger present");
    let goodput = chaos.session_epochs as f64 / plain.session_epochs.max(1) as f64;
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"pictor-fleet-chaos/v1\",\n");
    out.push_str(&format!("  \"quick\": {},\n", !full));
    out.push_str(&format!("  \"servers\": {},\n", chaos.servers));
    out.push_str(&format!("  \"groups\": {},\n", eng.groups.len()));
    out.push_str(&format!("  \"epochs\": {},\n", chaos.epochs));
    out.push_str(&format!("  \"shards\": {},\n", eng.shards));
    out.push_str(&format!("  \"seed\": {},\n", chaos.seed));
    out.push_str(&format!("  \"arrivals_offered\": {},\n", chaos.offered));
    out.push_str(&format!("  \"admitted\": {},\n", chaos.admitted));
    out.push_str(&format!("  \"rejected\": {},\n", chaos.rejected));
    out.push_str(&format!(
        "  \"session_epochs\": {},\n",
        chaos.session_epochs
    ));
    out.push_str(&format!(
        "  \"session_epochs_fault_free\": {},\n",
        plain.session_epochs
    ));
    out.push_str(&format!("  \"goodput_retained\": {goodput:.6},\n"));
    out.push_str(&format!("  \"utilization\": {},\n", chaos.utilization));
    out.push_str(&format!("  \"rtt_p99_ms\": {},\n", chaos.rtt.p99()));
    out.push_str(&format!(
        "  \"rtt_p99_ms_fault_free\": {},\n",
        plain.rtt.p99()
    ));
    out.push_str(&format!("  \"fps_p50\": {},\n", chaos.fps.p50()));
    for (key, value) in dynamics.metrics() {
        out.push_str(&format!("  \"{key}\": {value},\n"));
    }
    out.push_str(&format!(
        "  \"recovery_mean_epochs\": {},\n",
        fl.mean_recovery_epochs()
    ));
    out.push_str(&format!("  \"wall_ns\": {wall_ns},\n"));
    out.push_str(&format!(
        "  \"session_epochs_per_wall_second\": {:.1}\n",
        chaos.session_epochs as f64 / (wall_ns as f64 / 1e9)
    ));
    out.push_str("}\n");
    out
}

fn print_ledger(fl: &FaultStats) {
    println!(
        "injections:   {} crashes, {} degradations, {} brownouts ({} skipped on non-serving)",
        fl.crashes, fl.gpu_degrades, fl.brownouts, fl.skipped
    );
    println!(
        "health:       {} down + {} warming + {} draining server-epochs",
        fl.downtime_epochs, fl.warming_epochs, fl.draining_epochs
    );
    println!(
        "recovery:     {} orphaned + {} evicted -> {} recovered + {} lost ({} retries, mean {:.1} epochs to re-place)",
        fl.orphaned,
        fl.evicted,
        fl.recovered,
        fl.lost,
        fl.recovery_retries,
        fl.mean_recovery_epochs()
    );
    println!(
        "slo damage:   {} RTT violations attributable to brownouts",
        fl.fault_rtt_violations
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args.get(i + 1).expect("--out needs a path").clone());
    // Full: the headline chaos fleet. Quick: a 40-server slice whose
    // horizon scales with PICTOR_SECS so the CI smoke stays fast.
    let (per_group, epochs) = if full {
        (150, 900)
    } else {
        (10, (60 * measured_secs()).clamp(40, 400))
    };
    banner("Fleet engine under chaos: fault injection, recovery, goodput");
    let chaos_eng = engine(per_group, epochs, Some(chaos_plan()));
    println!(
        "fleet: {} servers in {} GPU groups, {} epochs, {} shards, {} threads; fault-free twin alongside",
        chaos_eng.total_servers(),
        chaos_eng.groups.len(),
        epochs,
        chaos_eng.shards,
        default_threads(),
    );
    let start = Instant::now();
    let chaos = chaos_eng.run();
    let wall_ns = start.elapsed().as_nanos();
    let plain = engine(per_group, epochs, None).run();

    assert!(chaos.non_finite_paths().is_empty(), "non-finite metrics");
    let dynamics = chaos.dynamics.as_ref().expect("dynamic engine");
    let fl = dynamics.faults.as_ref().expect("fault ledger");
    // The ledger identities the property suite pins, re-checked on the
    // benchmark configuration itself.
    assert_eq!(
        chaos.offered,
        chaos.admitted + chaos.rejected + dynamics.backpressure.as_ref().map_or(0, |b| b.queued)
    );
    assert_eq!(fl.orphaned + fl.evicted, fl.recovered + fl.lost);
    if full {
        assert!(chaos.servers >= 600, "full run must span >= 600 servers");
        assert!(fl.crashes > 0 && fl.gpu_degrades > 0 && fl.brownouts > 0);
        assert!(fl.recovered > 0, "full run must recover some orphans");
    }

    let json = to_json(&chaos, &plain, &chaos_eng, full, wall_ns);
    if let Ok(dir) = std::env::var("PICTOR_REPORT_DIR") {
        let dir = std::path::Path::new(&dir);
        std::fs::create_dir_all(dir).expect("create PICTOR_REPORT_DIR");
        let path = dir.join("fleet_chaos.json");
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    }
    if let Some(path) = out_path {
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    }

    print_ledger(fl);
    println!(
        "goodput:      {} session-epochs under chaos vs {} fault-free ({:.1}% retained)",
        chaos.session_epochs,
        plain.session_epochs,
        100.0 * chaos.session_epochs as f64 / plain.session_epochs.max(1) as f64,
    );
    println!(
        "tails:        RTT p99 {:.1} ms (vs {:.1} fault-free), FPS p50 {:.1}, utilization {:.1}%",
        chaos.rtt.p99(),
        plain.rtt.p99(),
        chaos.fps.p50(),
        100.0 * chaos.utilization,
    );
    println!(
        "wall:         {:.2} s chaos run -> {:.0} session-epochs/s",
        wall_ns as f64 / 1e9,
        chaos.session_epochs as f64 / (wall_ns as f64 / 1e9),
    );
}
