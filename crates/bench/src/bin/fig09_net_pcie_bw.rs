//! Fig 9: network and PCIe bandwidth usage per benchmark (single instance).
//!
//! Paper reference: frame traffic below 600 Mbps; input traffic ~1.5 Mbps;
//! PCIe below 5 GB/s with the GPU→CPU direction dominated by frame readback
//! and SuperTuxKart the CPU→GPU outlier.

use pictor_apps::AppId;
use pictor_bench::{banner, master_seed, run_humans};
use pictor_core::report::{fmt, Table};
use pictor_render::SystemConfig;

fn main() {
    banner("Figure 9: network and PCIe bandwidth per benchmark (one instance)");
    let mut table = Table::new(
        [
            "app",
            "net down Mbps",
            "PCIe to GPU GB/s",
            "PCIe from GPU GB/s",
        ]
        .map(String::from)
        .to_vec(),
    );
    for app in AppId::ALL {
        let result = run_humans(app, 1, SystemConfig::turbovnc_stock(), master_seed());
        let r = &result.solo().report;
        table.row(vec![
            app.code().into(),
            fmt(r.net_down_mbps, 0),
            fmt(r.pcie_up_gbps, 3),
            fmt(r.pcie_down_gbps, 3),
        ]);
    }
    println!("{}", table.render());
    println!("Paper: net < 600 Mbps; PCIe < 5 GB/s; STK is the upload outlier;");
    println!("all apps show heavy GPU→CPU traffic (frame readback).");
}
