//! Fig 9: network and PCIe bandwidth per benchmark (single instance).

use pictor_bench::figures::fig09;
use pictor_bench::{banner, master_seed, measured_secs, run_suite};

fn main() {
    banner("Figure 9: network and PCIe bandwidth per benchmark (one instance)");
    let report = run_suite(fig09::grid(measured_secs(), master_seed()));
    print!("{}", fig09::render(&report));
}
