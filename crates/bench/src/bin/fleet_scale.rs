//! Fleet engine at scale: a heterogeneous 1000+-server fleet absorbing a
//! million-plus session arrivals through the sharded online engine, with
//! autoscaling, migration and backpressure all on and the surrogate data
//! plane turning placements into FPS/RTT tails.
//!
//! Default sizing is a small smoke fleet scaled by `PICTOR_SECS` (the CI
//! figure-smoke runs it at 1); `--full` runs the headline configuration —
//! 1200 servers in four GPU groups, 1800 epochs, ≥1M arrivals — that
//! produces the committed `BENCH_07.json`. `--out PATH` writes the
//! machine-readable result (schema `pictor-fleet-scale/v1`) to PATH in
//! addition to `PICTOR_REPORT_DIR/fleet_scale.json`.

use std::sync::Arc;
use std::time::Instant;

use pictor_apps::AppId;
use pictor_bench::{banner, master_seed, measured_secs};
use pictor_core::fleet::{
    ArrivalConfig, AutoscaleConfig, BackpressureConfig, DataPlane, FirstFit, FleetEngine,
    FleetReport, FleetSpec, GroupSpec, MigrationConfig, WorkloadMix,
};
use pictor_core::suite::default_threads;
use pictor_hw::GpuModel;
use pictor_render::SystemConfig;

/// The four GPU groups of the fleet, lowest to highest throughput.
const GPUS: [GpuModel; 4] = [
    GpuModel::Gtx1060,
    GpuModel::TeslaT4,
    GpuModel::Rtx2080Ti,
    GpuModel::Rtx3090,
];

fn engine(per_group: usize, epochs: u64) -> FleetEngine {
    let base = SystemConfig::turbovnc_stock();
    let mix = WorkloadMix::uniform([AppId::Dota2, AppId::SuperTuxKart, AppId::ZeroAd]);
    let servers = per_group * GPUS.len();
    // Oversubscribed on purpose: open demand alone wants ~110% of the
    // fleet's slot-seconds, so admission control, parking and autoscale
    // ramp all carry real load.
    let arrivals = ArrivalConfig {
        label: "scale".into(),
        open_rate_per_sec: 0.55,
        closed_clients: 1,
        mean_session_secs: 8.0,
        mean_think_secs: 6.0,
    };
    let spec = FleetSpec::new(servers, mix, Arc::new(FirstFit), master_seed()).epochs(epochs);
    let mut eng = FleetEngine::from_spec(&spec);
    eng.groups = GPUS
        .iter()
        .map(|&gpu| GroupSpec::with_gpu(per_group, &base, gpu))
        .collect();
    eng.arrivals = arrivals;
    eng.data_plane = DataPlane::Surrogate;
    eng.shards = GPUS.len();
    eng.autoscale = Some(AutoscaleConfig {
        eval_every_epochs: 2,
        min_active_per_group: (per_group / 3).max(1),
        ..AutoscaleConfig::steady()
    });
    eng.migration = Some(MigrationConfig::contention_relief());
    eng.backpressure = Some(BackpressureConfig {
        queue_limit: (servers / 8).max(8),
        retry_after_epochs: 1,
    });
    eng
}

fn to_json(report: &FleetReport, eng: &FleetEngine, full: bool, wall_ns: u128) -> String {
    let wall_s = wall_ns as f64 / 1e9;
    let dynamics = report.dynamics.as_ref().expect("dynamic engine");
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"pictor-fleet-scale/v1\",\n");
    out.push_str(&format!("  \"quick\": {},\n", !full));
    out.push_str(&format!("  \"servers\": {},\n", report.servers));
    out.push_str(&format!("  \"groups\": {},\n", eng.groups.len()));
    out.push_str(&format!(
        "  \"slots_per_server\": {},\n",
        report.slots_per_server
    ));
    out.push_str(&format!("  \"epochs\": {},\n", report.epochs));
    out.push_str(&format!("  \"shards\": {},\n", eng.shards));
    out.push_str(&format!("  \"seed\": {},\n", report.seed));
    out.push_str(&format!("  \"arrivals_offered\": {},\n", report.offered));
    out.push_str(&format!("  \"admitted\": {},\n", report.admitted));
    out.push_str(&format!("  \"rejected\": {},\n", report.rejected));
    out.push_str(&format!("  \"peak_sessions\": {},\n", report.peak_sessions));
    out.push_str(&format!(
        "  \"session_epochs\": {},\n",
        report.session_epochs
    ));
    out.push_str(&format!("  \"utilization\": {},\n", report.utilization));
    out.push_str(&format!("  \"rtt_p99_ms\": {},\n", report.rtt.p99()));
    out.push_str(&format!("  \"fps_p50\": {},\n", report.fps.p50()));
    for (key, value) in dynamics.metrics() {
        out.push_str(&format!("  \"{key}\": {value},\n"));
    }
    out.push_str(&format!("  \"wall_ns\": {wall_ns},\n"));
    out.push_str(&format!(
        "  \"arrivals_per_wall_second\": {:.1},\n",
        report.offered as f64 / wall_s
    ));
    out.push_str(&format!(
        "  \"sessions_simulated_per_wall_second\": {:.1}\n",
        report.admitted as f64 / wall_s
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args.get(i + 1).expect("--out needs a path").clone());
    // Full: the headline fleet. Quick: a 120-server slice whose horizon
    // scales with PICTOR_SECS so the CI smoke stays fast.
    let (per_group, epochs) = if full {
        (300, 1800)
    } else {
        (30, (60 * measured_secs()).clamp(30, 600))
    };
    banner("Fleet engine at scale: sharded online loop, dynamic policies");
    let eng = engine(per_group, epochs);
    println!(
        "fleet: {} servers in {} GPU groups x {} slots, {} epochs, {} shards, {} threads",
        eng.total_servers(),
        eng.groups.len(),
        eng.slots_per_server,
        epochs,
        eng.shards,
        default_threads(),
    );
    let start = Instant::now();
    let report = eng.run();
    let wall_ns = start.elapsed().as_nanos();

    assert!(report.non_finite_paths().is_empty(), "non-finite metrics");
    if full {
        assert!(
            report.offered >= 1_000_000,
            "full run must offer >= 1M arrivals, got {}",
            report.offered
        );
        assert!(report.servers >= 1000, "full run must span >= 1000 servers");
    }

    let json = to_json(&report, &eng, full, wall_ns);
    if let Ok(dir) = std::env::var("PICTOR_REPORT_DIR") {
        let dir = std::path::Path::new(&dir);
        std::fs::create_dir_all(dir).expect("create PICTOR_REPORT_DIR");
        let path = dir.join("fleet_scale.json");
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    }
    if let Some(path) = out_path {
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    }

    let wall_s = wall_ns as f64 / 1e9;
    let dynamics = report.dynamics.as_ref().expect("dynamic engine");
    println!(
        "arrivals: {} offered, {} admitted, {} rejected (rate {:.1}%), peak {} concurrent",
        report.offered,
        report.admitted,
        report.rejected,
        100.0 * report.rejected as f64 / report.offered.max(1) as f64,
        report.peak_sessions,
    );
    if let Some(a) = &dynamics.autoscale {
        println!(
            "autoscale: {} grows, {} shrinks, {}..{} active servers, {} active slot-epochs",
            a.grow_events,
            a.shrink_events,
            a.min_active_servers,
            a.max_active_servers,
            a.active_slot_epochs
        );
    }
    if let Some(m) = &dynamics.migration {
        println!(
            "migration: {} moves over {} evaluations",
            m.migrations, m.evaluations
        );
    }
    if let Some(b) = &dynamics.backpressure {
        println!(
            "backpressure: {} parked, {} retried, {} expired, {} dropped, peak queue {}",
            b.queued, b.retried, b.expired, b.dropped, b.peak_queue
        );
    }
    println!(
        "tails: FPS p50 {:.1}, RTT p95 {:.1} ms, RTT p99 {:.1} ms, utilization {:.1}%",
        report.fps.p50(),
        report.rtt.p95(),
        report.rtt.p99(),
        100.0 * report.utilization,
    );
    println!(
        "wall: {:.2} s -> {:.0} arrivals/s, {:.0} admitted sessions/s, {:.0} session-epochs/s",
        wall_s,
        report.offered as f64 / wall_s,
        report.admitted as f64 / wall_s,
        report.session_epochs as f64 / wall_s,
    );
}
