//! Fleet sweep: multi-server placement, session churn and tail-latency
//! SLO metrics — the deployment layer above the paper's single server.

use pictor_bench::figures::fleet;
use pictor_bench::{banner, master_seed, measured_secs, run_fleet_suite};

fn main() {
    banner("Fleet sweep: size x arrival rate x placement policy");
    let report = run_fleet_suite(fleet::grid(measured_secs(), master_seed()));
    print!("{}", fleet::render(&report));
}
