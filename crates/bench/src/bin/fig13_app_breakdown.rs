//! Fig 13: application time broken into logic (AL), frame copy (FC) and the
//! parallel GPU rendering (RD), for 1–4 instances.
//!
//! Paper reference: frame copy dominates many benchmarks (the §6 target);
//! GPU rendering runs in parallel and is never the bottleneck; AL inflates
//! +235% and RD +133% at 4 instances.

use pictor_apps::AppId;
use pictor_bench::{banner, master_seed, run_humans};
use pictor_core::report::{fmt, Table};
use pictor_render::records::Stage;
use pictor_render::SystemConfig;

fn main() {
    banner("Figure 13: application-time breakdown (AL / FC vs parallel RD)");
    let mut table = Table::new(
        ["app", "n", "AL ms", "FC ms", "RD ms (parallel)"]
            .map(String::from)
            .to_vec(),
    );
    let mut al_solo = [0.0; 6];
    let mut rd_solo = [0.0; 6];
    for (ai, app) in AppId::ALL.into_iter().enumerate() {
        for n in 1..=4usize {
            let result = run_humans(
                app,
                n,
                SystemConfig::turbovnc_stock(),
                master_seed() ^ n as u64,
            );
            let m = &result.instances[0];
            let al = m.stage_ms(Stage::Al);
            let rd = m.stage_ms(Stage::Rd);
            if n == 1 {
                al_solo[ai] = al;
                rd_solo[ai] = rd;
            }
            table.row(vec![
                app.code().into(),
                n.to_string(),
                fmt(al, 1),
                fmt(m.stage_ms(Stage::Fc), 1),
                fmt(rd, 1),
            ]);
            if n == 4 {
                println!(
                    "{}: AL inflation at 4 instances {:+.0}%, RD {:+.0}%",
                    app.code(),
                    (al / al_solo[ai] - 1.0) * 100.0,
                    (rd / rd_solo[ai] - 1.0) * 100.0
                );
            }
        }
    }
    println!("\n{}", table.render());
    println!("Paper: FC dominates many apps; AL +235% and RD +133% at 4 instances.");
}
