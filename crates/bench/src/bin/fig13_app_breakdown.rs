//! Fig 13: application-time breakdown (AL / FC vs parallel RD).

use pictor_bench::figures::fig13;
use pictor_bench::{banner, master_seed, measured_secs, run_suite};

fn main() {
    banner("Figure 13: application-time breakdown (AL / FC vs parallel RD)");
    let report = run_suite(fig13::grid(measured_secs(), master_seed()));
    print!("{}", fig13::render(&report));
}
