//! Fig 16: GPU L2 and texture cache miss rates for 1–4 instances.
//!
//! Paper reference: moderate L2 miss rates except InMind; L2 rises with
//! co-location (interleaved frames thrash the shared cache) while the
//! private texture cache stays flat. (The paper could not read 0AD's GPU
//! counters — OpenGL 1.3; the simulation has no such limitation but we note
//! it for fidelity.)

use pictor_apps::AppId;
use pictor_bench::{banner, master_seed, run_humans};
use pictor_core::report::{fmt, Table};
use pictor_render::SystemConfig;

fn main() {
    banner("Figure 16: GPU L2 and texture cache miss rates for 1-4 instances");
    let mut table = Table::new(
        ["app", "n", "L2 miss%", "texture miss%"]
            .map(String::from)
            .to_vec(),
    );
    for app in AppId::ALL {
        for n in 1..=4usize {
            let result = run_humans(
                app,
                n,
                SystemConfig::turbovnc_stock(),
                master_seed() ^ n as u64,
            );
            let r = &result.instances[0].report;
            table.row(vec![
                app.code().into(),
                n.to_string(),
                fmt(r.gpu_l2_miss_rate * 100.0, 1),
                fmt(r.texture_miss_rate * 100.0, 1),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Paper: L2 rises with n, texture flat (private); InMind is the outlier.");
    println!("(The paper could not read 0AD's GPU PMUs — OpenGL 1.3.)");
}
