//! Fig 16: GPU L2 and texture cache miss rates for 1–4 instances.

use pictor_bench::figures::fig16;
use pictor_bench::{banner, master_seed, measured_secs, run_suite};

fn main() {
    banner("Figure 16: GPU L2 and texture cache miss rates for 1-4 instances");
    let report = run_suite(fig16::grid(measured_secs(), master_seed()));
    print!("{}", fig16::render(&report));
}
