//! Perf-trajectory reporter: times the repository's canonical hot loops and
//! emits a machine-readable JSON report (`BENCH_06.json`).
//!
//! Following the continuous-benchmarking discipline of Mohammadi & Bazhirov
//! (arXiv:1812.05257), the committed report gives every future PR a
//! measured baseline to compare against instead of ad-hoc claims. Where the
//! seed's naive kernel is still available as a reference implementation
//! (`*_reference`), the report measures *both* sides in the same run, so
//! before/after numbers come from the same machine and build.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p pictor-bench --bin perf_report            # full run
//! cargo run --release -p pictor-bench --bin perf_report -- --quick # CI smoke
//! cargo run --release -p pictor-bench --bin perf_report -- --out my.json
//! ```
//!
//! After timing, every kernel's outputs are checked for non-finite values
//! (`assert_all_finite`) and the timings themselves are validated, so a CI
//! perf-smoke run catches numeric corruption as well as crashes.

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use pictor_apps::{AppId, HumanPolicy};
use pictor_bench::fixtures::{assert_all_finite, conv_d_out, conv_fixture, lstm_d_h, lstm_fixture};
use pictor_client::ic::{IcTrainConfig, IntelligentClient};
use pictor_core::fleet::{FirstFit, FleetSpec, WorkloadMix};
use pictor_ml::{Matrix, Scratch};
use pictor_render::{CloudSystem, HumanDriver, SystemConfig};
use pictor_sim::{SeedTree, SimDuration};

/// `pipeline_one_simulated_second` median committed in PR 3's
/// `BENCH_03.json` — the pre-refactor baseline the pooled/slab hot loop is
/// gated against (measured on the same machine class as this report).
const PIPELINE_SEED_NS: u128 = 5_575_665;

/// Median wall-clock nanoseconds of `iters` runs of `f`.
fn median_ns<O>(iters: usize, mut f: impl FnMut() -> O) -> u128 {
    let mut times: Vec<u128> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        times.push(start.elapsed().as_nanos());
    }
    times.sort_unstable();
    times[times.len() / 2]
}

struct Row {
    name: &'static str,
    before_ns: Option<u128>,
    after_ns: u128,
}

impl Row {
    fn speedup(&self) -> Option<f64> {
        self.before_ns
            .map(|b| b as f64 / self.after_ns.max(1) as f64)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_06.json".to_string());
    // Sample counts: enough for a stable median in a full run, minimal in
    // --quick (CI smoke only checks for panics/NaN and artifact shape).
    let (n_fast, n_slow) = if quick { (3, 1) } else { (200, 20) };

    let mut rows: Vec<Row> = Vec::new();
    let mut ws = Scratch::new();

    // --- blocked GEMM vs the seed's naive triple loop -------------------
    let a = Matrix::from_vec(
        96,
        96,
        (0..96 * 96)
            .map(|i| ((i * 31 % 97) as f64 - 48.0) / 48.0)
            .collect(),
    );
    let b = Matrix::from_vec(
        96,
        96,
        (0..96 * 96)
            .map(|i| ((i * 57 % 89) as f64 - 44.0) / 44.0)
            .collect(),
    );
    rows.push(Row {
        name: "matmul_96x96x96",
        before_ns: Some(median_ns(n_fast, || a.matmul_reference(&b))),
        after_ns: median_ns(n_fast, || a.matmul(&b)),
    });
    assert_all_finite("matmul_96x96x96", a.matmul(&b).data());

    // --- conv forward: vision-shaped batch (32 cells, 3→6 ch, 6×8, k3) --
    let (mut conv, x) = conv_fixture();
    rows.push(Row {
        name: "conv_forward_cells_b32",
        before_ns: Some(median_ns(n_fast, || conv.infer_reference(&x))),
        after_ns: median_ns(n_fast, || conv.infer(&x, &mut ws)),
    });
    assert_all_finite("conv_forward_cells_b32", conv.infer(&x, &mut ws).data());

    // --- conv forward+backward training step -----------------------------
    let d_out = conv_d_out();
    let before_train = median_ns(n_fast, || {
        let pre = conv.conv_forward_reference(&x);
        conv.backward_reference(&x, &pre, &d_out)
    });
    rows.push(Row {
        name: "conv_train_step_b32",
        before_ns: Some(before_train),
        after_ns: median_ns(n_fast, || {
            let y = conv.forward(&x, &mut ws);
            let dx = conv.backward(&d_out, &mut ws);
            (y.data()[0], dx.data()[0])
        }),
    });
    let y = conv.forward(&x, &mut ws);
    let dx = conv.backward(&d_out, &mut ws);
    assert_all_finite("conv_train_step_b32/y", y.data());
    assert_all_finite("conv_train_step_b32/dx", dx.data());
    for (pi, (_, grad)) in conv.params_and_grads().iter().enumerate() {
        assert_all_finite(&format!("conv_train_step_b32/grad{pi}"), grad);
    }

    // --- LSTM sequence: agent-shaped (6 steps, batch 16, 13→24) ----------
    let (mut lstm, xs) = lstm_fixture();
    rows.push(Row {
        name: "lstm_infer_seq_t6_b16",
        before_ns: Some(median_ns(n_fast, || lstm.infer_reference(&xs))),
        after_ns: median_ns(n_fast, || lstm.infer(&xs, &mut ws)),
    });
    assert_all_finite("lstm_infer_seq_t6_b16", lstm.infer(&xs, &mut ws).data());

    // --- LSTM training step over a sequence (forward + BPTT) -------------
    // This is the agent-training hot loop the tentpole targets: the seed
    // cloned every per-step tensor and ran naive matmuls; the arena path
    // reuses storage and the blocked kernel.
    let d_h = lstm_d_h();
    rows.push(Row {
        name: "lstm_train_seq_t6_b16",
        before_ns: Some(median_ns(n_fast, || lstm.train_seq_reference(&xs, &d_h))),
        after_ns: median_ns(n_fast, || {
            let h = lstm.forward(&xs, &mut ws);
            let dxs = lstm.backward(&d_h, &mut ws);
            (h.data()[0], dxs[0].data()[0])
        }),
    });
    let h = lstm.forward(&xs, &mut ws);
    assert_all_finite("lstm_train_seq_t6_b16/h", h.data());
    for (t, dx_t) in lstm.backward(&d_h, &mut ws).iter().enumerate() {
        assert_all_finite(&format!("lstm_train_seq_t6_b16/dx{t}"), dx_t.data());
    }

    // --- intelligent-client fast training (record + CNN + LSTM) ----------
    // No in-tree reference: the seed wall-clock is pinned in the committed
    // BENCH_03.json metadata instead.
    let ic_iters = if quick { 1 } else { 3 };
    rows.push(Row {
        name: "ic_train_fast",
        before_ns: None,
        after_ns: median_ns(ic_iters, || {
            let ic = IntelligentClient::train(
                AppId::RedEclipse,
                &SeedTree::new(5),
                IcTrainConfig::fast(),
            );
            assert!(
                ic.vision().train_accuracy().is_finite(),
                "ic_train_fast: non-finite training accuracy"
            );
            ic
        }),
    });

    // --- full pipeline second (human driver, stock TurboVNC) -------------
    rows.push(Row {
        name: "pipeline_one_simulated_second",
        before_ns: Some(PIPELINE_SEED_NS),
        after_ns: median_ns(n_slow, || {
            let seeds = SeedTree::new(6);
            let mut sys = CloudSystem::new(SystemConfig::turbovnc_stock(), seeds);
            sys.add_instance(
                AppId::Dota2,
                Box::new(HumanDriver::new(
                    HumanPolicy::new(AppId::Dota2, seeds.stream("h")),
                    seeds.stream("attn"),
                )),
            );
            sys.start();
            sys.run_for(SimDuration::from_secs(1));
            sys.now()
        }),
    });

    // --- fleet throughput: simulated session-seconds per wall-second -----
    // One single-threaded fleet run (4 servers, churning sessions) so the
    // number is a property of the hot loop, not of the pool's parallelism.
    // Each session-epoch is one simulated second of one session.
    let fleet_epochs = if quick { 2 } else { 10 };
    let fleet_spec = FleetSpec::new(
        4,
        WorkloadMix::weighted(AppId::ALL.into_iter().map(|id| (id.spec(), 1.0))),
        Arc::new(FirstFit),
        11,
    )
    .epochs(fleet_epochs);
    let fleet_start = Instant::now();
    let fleet_report = fleet_spec.run_with_threads(1);
    let fleet_wall_ns = fleet_start.elapsed().as_nanos();
    let fleet_rate = fleet_report.session_epochs as f64 * 1e9 / fleet_wall_ns.max(1) as f64;
    rows.push(Row {
        name: "fleet_4srv_first_fit_1thread",
        before_ns: None,
        after_ns: fleet_wall_ns,
    });
    assert!(
        fleet_report.session_epochs > 0,
        "fleet bench simulated no session-epochs"
    );

    // --- report -----------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"pictor-perf-trajectory/v1\",\n");
    json.push_str("  \"pr\": 6,\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(
        "  \"note\": \"before_ns = seed naive kernel (in-tree *_reference), after_ns = blocked \
         GEMM path; both timed in the same release build on the same machine\",\n",
    );
    json.push_str(
        "  \"pipeline_note\": \"pipeline_one_simulated_second before_ns is the median committed \
         in PR 3's BENCH_03.json (pre-refactor event loop); after_ns is the pooled/slab hot \
         loop with zero steady-state allocations\",\n",
    );
    json.push_str(&format!(
        "  \"fleet\": {{\"session_epochs\": {}, \"wall_ns\": {}, \
         \"sessions_simulated_per_wall_second\": {:.1}}},\n",
        fleet_report.session_epochs, fleet_wall_ns, fleet_rate
    ));
    json.push_str(
        "  \"lstm_note\": \"the LSTM benches are capped by ~90us/seq of libm exp/tanh shared \
         with the reference; the kernels stay bit-identical to the seed (golden stability), \
         which rules out approximate gate activations\",\n",
    );
    json.push_str("  \"seed_baselines\": {\n");
    json.push_str("    \"commit\": \"436908a\",\n");
    json.push_str("    \"ic_decide_full_frame_ns\": 97035,\n");
    json.push_str("    \"pipeline_one_simulated_second_ns\": 6887392,\n");
    json.push_str("    \"train_ic_example_default_config_ms\": 10013,\n");
    json.push_str("    \"debug_client_test_suite_ms\": 69059\n");
    json.push_str("  },\n");
    json.push_str("  \"benchmarks\": [\n");
    println!(
        "{:<34} {:>14} {:>14} {:>9}",
        "benchmark", "before ns", "after ns", "speedup"
    );
    for (i, row) in rows.iter().enumerate() {
        assert!(row.after_ns > 0, "{}: zero/invalid timing", row.name);
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let before = row.before_ns.map_or("null".to_string(), |v| v.to_string());
        let speedup = row
            .speedup()
            .map_or("null".to_string(), |s| format!("{s:.2}"));
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"before_ns\": {}, \"after_ns\": {}, \"speedup\": {}}}{}\n",
            row.name, before, row.after_ns, speedup, comma
        ));
        println!(
            "{:<34} {:>14} {:>14} {:>9}",
            row.name,
            row.before_ns.map_or("-".into(), |v: u128| v.to_string()),
            row.after_ns,
            row.speedup().map_or("-".into(), |s| format!("{s:.2}x")),
        );
    }
    json.push_str("  ]\n}\n");
    println!(
        "{:<34} {:>14} session-epochs {:>8.1}/wall-s",
        "fleet_sessions_simulated", fleet_report.session_epochs, fleet_rate
    );
    let mut f = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    f.write_all(json.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("perf trajectory written to {out_path}");
}
