//! Fig 6: RTT distributions under Human, Intelligent Client, DeskBench,
//! Chen et al. and Slow-Motion, for all six benchmarks.
//!
//! Prints mean / p1 / p25 / p75 / p99 per (app, methodology) — the exact
//! series of the paper's Fig 6 box plots.

use pictor_apps::AppId;
use pictor_baselines::deskbench::DeskBenchConfig;
use pictor_baselines::{chen_estimate, slow_motion_config, DeskBenchDriver};
use pictor_bench::{banner, master_seed, measured_secs};
use pictor_client::ic::{IcTrainConfig, IntelligentClient};
use pictor_client::record_session;
use pictor_core::report::{fmt, Table};
use pictor_core::{run_experiment, ExperimentSpec, IcDriver};
use pictor_render::SystemConfig;
use pictor_sim::stats::FivePoint;
use pictor_sim::{SeedTree, SimDuration};

fn five_point_row(table: &mut Table, app: AppId, method: &str, fp: FivePoint, n: usize) {
    table.row(vec![
        app.code().into(),
        method.into(),
        fmt(fp.mean, 1),
        fmt(fp.p1, 1),
        fmt(fp.p25, 1),
        fmt(fp.p75, 1),
        fmt(fp.p99, 1),
        n.to_string(),
    ]);
}

fn main() {
    banner("Figure 6: RTT distributions (Human, IC, DeskBench, Chen, Slow-Motion)");
    let seed = master_seed();
    let duration = SimDuration::from_secs(measured_secs());
    let config = SystemConfig::turbovnc_stock();
    let mut table = Table::new(
        ["app", "method", "mean", "p1", "p25", "p75", "p99", "inputs"]
            .map(String::from)
            .to_vec(),
    );
    for app in AppId::ALL {
        // Human reference.
        let human = run_experiment(ExperimentSpec {
            duration,
            ..ExperimentSpec::with_humans(vec![app], config.clone(), seed)
        });
        five_point_row(
            &mut table,
            app,
            "Human",
            human.solo().rtt,
            human.solo().tracked_inputs,
        );

        // Intelligent client (trained on a recorded human session).
        let ic_seeds = SeedTree::new(seed).child(&format!("ic-{app}"));
        let ic = IntelligentClient::train(app, &ic_seeds, IcTrainConfig::default());
        let ic_run = run_experiment(ExperimentSpec {
            apps: vec![app],
            config: config.clone(),
            seed: seed ^ 0x1c,
            warmup: SimDuration::from_secs(3),
            duration,
            drivers: Box::new(move |_, _, _| Box::new(IcDriver::new(ic.clone()))),
        });
        five_point_row(
            &mut table,
            app,
            "IC",
            ic_run.solo().rtt,
            ic_run.solo().tracked_inputs,
        );

        // DeskBench replay (records a human session, replays it gated on
        // frame similarity; Pictor's framework still measures).
        let db_session = record_session(
            app,
            &SeedTree::new(seed).child(&format!("db-{app}")),
            900,
            13.3,
        );
        let db_run = run_experiment(ExperimentSpec {
            apps: vec![app],
            config: config.clone(),
            seed: seed ^ 0xdb,
            warmup: SimDuration::from_secs(3),
            duration,
            drivers: Box::new(move |_, _, _| {
                Box::new(DeskBenchDriver::new(
                    db_session.clone(),
                    DeskBenchConfig::default(),
                ))
            }),
        });
        five_point_row(
            &mut table,
            app,
            "DeskBench",
            db_run.solo().rtt,
            db_run.solo().tracked_inputs,
        );

        // Chen et al. stage summing.
        let chen = chen_estimate(app, &config, seed, duration);
        let mut chen_dist = chen.rtt_ms.clone();
        five_point_row(
            &mut table,
            app,
            "Chen",
            chen_dist.five_point(),
            chen.rtt_ms.len(),
        );

        // Slow-Motion delay injection.
        let sm = run_experiment(ExperimentSpec {
            duration,
            ..ExperimentSpec::with_humans(vec![app], slow_motion_config(&config), seed)
        });
        five_point_row(
            &mut table,
            app,
            "Slow-Motion",
            sm.solo().rtt,
            sm.solo().tracked_inputs,
        );
    }
    println!("{}", table.render());
    println!("RTT values in ms. Paper reference: IC tracks Human closely; DeskBench");
    println!("shifts the distribution; Chen and Slow-Motion sit well below Human.");
}
