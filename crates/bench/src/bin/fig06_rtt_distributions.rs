//! Fig 6: RTT distributions under the five methodologies.

use pictor_bench::figures::fig06;
use pictor_bench::{banner, master_seed, measured_secs, run_suite};

fn main() {
    banner("Figure 6: RTT distributions (Human, IC, DeskBench, Chen, Slow-Motion)");
    let report = run_suite(fig06::grid(measured_secs(), master_seed()));
    print!("{}", fig06::render(&report));
}
