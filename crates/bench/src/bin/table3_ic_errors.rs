//! Table 3: mean-RTT percentage error vs. the human reference.

use pictor_bench::figures::table3;
use pictor_bench::{banner, master_seed, measured_secs, run_suite};

fn main() {
    banner("Table 3: mean-RTT percentage error vs. human reference");
    let report = run_suite(table3::grid(measured_secs(), master_seed()));
    print!("{}", table3::render(&report));
}
