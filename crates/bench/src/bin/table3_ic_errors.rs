//! Table 3: percentage error of each methodology's mean RTT versus the
//! human reference, per benchmark and on average.
//!
//! Paper reference values: Pictor-IC 1.6% avg (max 3.2%), DeskBench 11.6%,
//! Chen et al. 30.0%, Slow-Motion 27.9%.

use pictor_apps::AppId;
use pictor_baselines::deskbench::DeskBenchConfig;
use pictor_baselines::{chen_estimate, slow_motion_config, DeskBenchDriver};
use pictor_bench::{banner, master_seed, measured_secs};
use pictor_client::ic::{IcTrainConfig, IntelligentClient};
use pictor_client::record_session;
use pictor_core::report::{fmt, Table};
use pictor_core::{run_experiment, ExperimentSpec, IcDriver};
use pictor_render::SystemConfig;
use pictor_sim::{SeedTree, SimDuration};

fn pct_err(measured: f64, reference: f64) -> f64 {
    ((measured - reference) / reference).abs() * 100.0
}

fn main() {
    banner("Table 3: mean-RTT percentage error vs. human reference");
    let seed = master_seed();
    let duration = SimDuration::from_secs(measured_secs());
    let config = SystemConfig::turbovnc_stock();
    let mut rows: Vec<(AppId, f64, f64, f64, f64)> = Vec::new();
    for app in AppId::ALL {
        let human = run_experiment(ExperimentSpec {
            duration,
            ..ExperimentSpec::with_humans(vec![app], config.clone(), seed)
        });
        let reference = human.solo().rtt.mean;

        let ic_seeds = SeedTree::new(seed).child(&format!("ic-{app}"));
        let ic = IntelligentClient::train(app, &ic_seeds, IcTrainConfig::default());
        let ic_run = run_experiment(ExperimentSpec {
            apps: vec![app],
            config: config.clone(),
            seed: seed ^ 0x1c,
            warmup: SimDuration::from_secs(3),
            duration,
            drivers: Box::new(move |_, _, _| Box::new(IcDriver::new(ic.clone()))),
        });

        let db_session = record_session(
            app,
            &SeedTree::new(seed).child(&format!("db-{app}")),
            900,
            13.3,
        );
        let db_run = run_experiment(ExperimentSpec {
            apps: vec![app],
            config: config.clone(),
            seed: seed ^ 0xdb,
            warmup: SimDuration::from_secs(3),
            duration,
            drivers: Box::new(move |_, _, _| {
                Box::new(DeskBenchDriver::new(
                    db_session.clone(),
                    DeskBenchConfig::default(),
                ))
            }),
        });

        let chen = chen_estimate(app, &config, seed, duration);
        let sm = run_experiment(ExperimentSpec {
            duration,
            ..ExperimentSpec::with_humans(vec![app], slow_motion_config(&config), seed)
        });

        rows.push((
            app,
            pct_err(ic_run.solo().rtt.mean, reference),
            pct_err(db_run.solo().rtt.mean, reference),
            pct_err(chen.rtt_ms.mean(), reference),
            pct_err(sm.solo().rtt.mean, reference),
        ));
    }

    let mut table = Table::new(
        ["method", "STK", "0AD", "RE", "D2", "IM", "ITP", "Avg"]
            .map(String::from)
            .to_vec(),
    );
    type ErrorRow = (AppId, f64, f64, f64, f64);
    type Extract = Box<dyn Fn(&ErrorRow) -> f64>;
    let methods: [(&str, Extract); 4] = [
        ("Pictor", Box::new(|r| r.1)),
        ("DB", Box::new(|r| r.2)),
        ("CH", Box::new(|r| r.3)),
        ("SM", Box::new(|r| r.4)),
    ];
    for (name, get) in methods {
        let vals: Vec<f64> = rows.iter().map(&get).collect();
        let avg = vals.iter().sum::<f64>() / vals.len() as f64;
        let mut cells = vec![name.to_string()];
        cells.extend(vals.iter().map(|v| format!("{}%", fmt(*v, 1))));
        cells.push(format!("{}%", fmt(avg, 1)));
        table.row(cells);
    }
    println!("{}", table.render());
    println!("Paper: Pictor 1.6% avg (max 3.2%), DB 11.6%, CH 30.0%, SM 27.9%.");
}
