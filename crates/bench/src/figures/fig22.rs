//! Fig 22 / §6: the two frame-copy optimizations — memoized
//! `XGetWindowAttributes` and the two-step asynchronous copy — applied to
//! stock TurboVNC, per benchmark, plus an ablation of each alone.
//!
//! Paper reference: server FPS +57.7% average (max +115.2%), client FPS
//! +7.4% average (max +19.5%), RTT −8.5% average (max −15.1%); ITP's client
//! FPS dips ~3% from extra proxy contention.

use std::fmt::Write as _;

use pictor_apps::AppId;
use pictor_core::report::{fmt, Table};
use pictor_core::{ScenarioGrid, SuiteReport};
use pictor_gfx::InterposerConfig;
use pictor_render::SystemConfig;

fn with_interposer(interposer: InterposerConfig) -> SystemConfig {
    SystemConfig {
        interposer,
        ..SystemConfig::turbovnc_stock()
    }
}

/// Every benchmark solo under all four interposer configurations.
pub fn grid(secs: u64, seed: u64) -> ScenarioGrid {
    ScenarioGrid::new("fig22_optimizations", seed)
        .duration_secs(secs)
        .solos(AppId::ALL)
        .config("stock", SystemConfig::turbovnc_stock())
        .config("memoize", with_interposer(InterposerConfig::memoize_only()))
        .config(
            "async",
            with_interposer(InterposerConfig::async_copy_only()),
        )
        .config("optimized", SystemConfig::optimized())
}

/// Renders the headline gains plus the single-optimization ablation.
pub fn render(report: &SuiteReport) -> String {
    let mut table = Table::new(
        [
            "app",
            "srv FPS stock",
            "srv FPS opt",
            "srv gain%",
            "cli gain%",
            "RTT change%",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut gains = (0.0, 0.0, 0.0);
    for app in AppId::ALL {
        let s = report.lookup(app.code(), "stock", "lan", "human").solo();
        let o = report
            .lookup(app.code(), "optimized", "lan", "human")
            .solo();
        let srv = (o.report.server_fps / s.report.server_fps - 1.0) * 100.0;
        let cli = (o.report.client_fps / s.report.client_fps - 1.0) * 100.0;
        let rtt = (o.rtt.mean / s.rtt.mean - 1.0) * 100.0;
        gains.0 += srv;
        gains.1 += cli;
        gains.2 += rtt;
        table.row(vec![
            app.code().into(),
            fmt(s.report.server_fps, 1),
            fmt(o.report.server_fps, 1),
            fmt(srv, 1),
            fmt(cli, 1),
            fmt(rtt, 1),
        ]);
    }
    let n = AppId::ALL.len() as f64;
    let mut out = table.render();
    let _ = writeln!(
        out,
        "Average: server FPS {:+.1}%, client FPS {:+.1}%, RTT {:+.1}%.",
        gains.0 / n,
        gains.1 / n,
        gains.2 / n
    );
    out.push_str("Paper: server +57.7% avg (max +115.2%), client +7.4%, RTT -8.5%.\n\n");

    out.push_str("--- Ablation: each optimization alone (server FPS gain %) ---\n");
    let mut ablation = Table::new(
        ["app", "memoize XGWA only", "async copy only", "both"]
            .map(String::from)
            .to_vec(),
    );
    for app in AppId::ALL {
        let base = report
            .lookup(app.code(), "stock", "lan", "human")
            .solo()
            .report
            .server_fps;
        let gain = |config: &str| {
            let fps = report
                .lookup(app.code(), config, "lan", "human")
                .solo()
                .report
                .server_fps;
            (fps / base - 1.0) * 100.0
        };
        ablation.row(vec![
            app.code().into(),
            fmt(gain("memoize"), 1),
            fmt(gain("async"), 1),
            fmt(gain("optimized"), 1),
        ]);
    }
    out.push_str(&ablation.render());
    out
}
