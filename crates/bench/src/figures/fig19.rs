//! Fig 19: Dota2's performance loss and cache-miss increases when co-running
//! with each other benchmark.
//!
//! Paper reference: contentiousness varies a lot — SuperTuxKart hurts Dota2
//! the most, 0AD the least; CPU-cache and GPU-cache contentiousness
//! correlate.

use std::fmt::Write as _;

use pictor_apps::AppId;
use pictor_core::report::{fmt, Table};
use pictor_core::{ScenarioGrid, SuiteReport};

/// Co-runners of Dota2, in `AppId::ALL` order.
pub fn co_runners() -> Vec<AppId> {
    AppId::ALL
        .into_iter()
        .filter(|&a| a != AppId::Dota2)
        .collect()
}

/// Solo Dota2 plus one Dota2+X pair per co-runner.
pub fn grid(secs: u64, seed: u64) -> ScenarioGrid {
    let mut grid = ScenarioGrid::new("fig19_dota2_contention", seed)
        .duration_secs(secs)
        .solo(AppId::Dota2);
    for co in co_runners() {
        grid = grid.workload(&format!("D2+{}", co.code()), vec![AppId::Dota2, co]);
    }
    grid
}

/// Renders Dota2's degradation under each co-runner.
pub fn render(report: &SuiteReport) -> String {
    let solo = report.cell("D2").solo().report.clone();
    let mut table = Table::new(
        [
            "co-runner",
            "D2 fps loss%",
            "L3 miss +pts",
            "GPU L2 miss +pts",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut rows: Vec<(AppId, f64)> = Vec::new();
    for co in co_runners() {
        let d2 = &report.cell(&format!("D2+{}", co.code())).instances[0].report;
        let loss = (1.0 - d2.client_fps / solo.client_fps) * 100.0;
        rows.push((co, loss));
        table.row(vec![
            co.code().into(),
            fmt(loss, 1),
            fmt((d2.l3_miss_rate - solo.l3_miss_rate) * 100.0, 1),
            fmt((d2.gpu_l2_miss_rate - solo.gpu_l2_miss_rate) * 100.0, 1),
        ]);
    }
    let worst = rows
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("rows");
    let best = rows
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("rows");
    let mut out = table.render();
    let _ = writeln!(
        out,
        "Highest contention from {} ({:.1}% loss), least from {} ({:.1}%).",
        worst.0.code(),
        worst.1,
        best.0.code(),
        best.1
    );
    out.push_str("Paper: STK causes the most contention, 0AD the least; CPU and GPU\n");
    out.push_str("cache contentiousness correlate.\n");
    out
}
