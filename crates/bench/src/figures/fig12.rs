//! Fig 12: server time broken into VNC input forwarding (PS), application
//! execution, frame handoff (AS) and compression (CP), for 1–4 instances.
//!
//! Paper reference: application execution dominates; PS/AS/CP stay below
//! 18 ms solo; the IPC stages (PS, AS) inflate up to +96% at 4 instances.

use pictor_apps::AppId;
use pictor_core::report::{fmt, Table};
use pictor_core::{ScenarioGrid, SuiteReport};
use pictor_render::records::Stage;

use super::{scaling_grid, scaling_label};

/// Every benchmark at 1–4 co-located instances.
pub fn grid(secs: u64, seed: u64) -> ScenarioGrid {
    scaling_grid("fig12_server_breakdown", secs, seed)
}

/// Renders the server-time breakdown of instance 0 per cell.
pub fn render(report: &SuiteReport) -> String {
    let mut table = Table::new(
        ["app", "n", "SP ms", "PS ms", "app ms", "AS ms", "CP ms"]
            .map(String::from)
            .to_vec(),
    );
    for app in AppId::ALL {
        for n in 1..=4usize {
            let m = &report.cell(&scaling_label(app, n)).instances[0];
            table.row(vec![
                app.code().into(),
                n.to_string(),
                fmt(m.stage_ms(Stage::Sp), 2),
                fmt(m.stage_ms(Stage::Ps), 2),
                fmt(m.app_time_ms + m.queue_wait_ms, 1),
                fmt(m.stage_ms(Stage::As), 2),
                fmt(m.stage_ms(Stage::Cp), 1),
            ]);
        }
    }
    format!(
        "{}Paper: app execution dominates; PS/AS/CP < 18 ms solo; IPC stages\n\
         inflate up to +96% at 4 instances.\n",
        table.render()
    )
}
