//! Fig 18 / §5.3.1: client FPS for all 15 pairs of different benchmarks,
//! plus the pair-vs-two-servers energy saving.
//!
//! Paper reference: 11 of 15 pairs stay above 25 client FPS; running a pair
//! on one server saves at least 37% energy versus two servers.

use std::fmt::Write as _;

use pictor_apps::AppId;
use pictor_core::report::{fmt, Table};
use pictor_core::{ScenarioGrid, SuiteReport};
use pictor_hw::PowerModel;

use super::fig17::cell_power;

/// The 15 unordered pairs of distinct benchmarks, in `AppId::ALL` order.
pub fn pairs() -> Vec<(AppId, AppId)> {
    let mut out = Vec::new();
    for (i, &a) in AppId::ALL.iter().enumerate() {
        for &b in AppId::ALL.iter().skip(i + 1) {
            out.push((a, b));
        }
    }
    out
}

/// The workload label of one pair cell.
pub fn pair_label(a: AppId, b: AppId) -> String {
    format!("{}+{}", a.code(), b.code())
}

/// Six solo cells (the two-servers baseline) plus the 15 pair cells.
pub fn grid(secs: u64, seed: u64) -> ScenarioGrid {
    let mut grid = ScenarioGrid::new("fig18_pairs_fps", seed)
        .duration_secs(secs)
        .solos(AppId::ALL);
    for (a, b) in pairs() {
        grid = grid.workload(&pair_label(a, b), vec![a, b]);
    }
    grid
}

/// Renders the pair FPS/energy table.
pub fn render(report: &SuiteReport) -> String {
    let model = PowerModel::paper_default();
    let mut table = Table::new(
        ["pair", "fps A", "fps B", "both ≥25?", "energy saving%"]
            .map(String::from)
            .to_vec(),
    );
    let solo_power = |app: AppId| cell_power(&model, report.cell(app.code())).total_watts;
    let mut ok_pairs = 0;
    let mut total_pairs = 0;
    for (a, b) in pairs() {
        total_pairs += 1;
        let cell = report.cell(&pair_label(a, b));
        let fps_a = cell.instances[0].report.client_fps;
        let fps_b = cell.instances[1].report.client_fps;
        let ok = fps_a >= 25.0 && fps_b >= 25.0;
        ok_pairs += usize::from(ok);
        let pair_power = cell_power(&model, cell).total_watts;
        let two_servers = solo_power(a) + solo_power(b);
        let saving = (1.0 - pair_power / two_servers) * 100.0;
        table.row(vec![
            pair_label(a, b),
            fmt(fps_a, 1),
            fmt(fps_b, 1),
            if ok { "yes" } else { "no" }.into(),
            fmt(saving, 1),
        ]);
    }
    let mut out = table.render();
    let _ = writeln!(
        out,
        "{ok_pairs} of {total_pairs} pairs keep both apps at ≥25 client FPS."
    );
    out.push_str("Paper: 11 of 15 pairs; energy saving ≥37% vs two servers.\n");
    out
}
