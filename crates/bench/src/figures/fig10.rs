//! Fig 10: server and client FPS when running 1–4 instances of the same
//! benchmark on one server.
//!
//! Paper reference: all apps stay ≥25 client FPS at 2 instances; RE, IM and
//! ITP also at 3; the lowest solo client FPS is 27 (0AD).

use pictor_apps::AppId;
use pictor_core::report::{fmt, Table};
use pictor_core::{ScenarioGrid, SuiteReport};

use super::{mean_over, scaling_grid, scaling_label};

/// Every benchmark at 1–4 co-located instances.
pub fn grid(secs: u64, seed: u64) -> ScenarioGrid {
    scaling_grid("fig10_fps_scaling", secs, seed)
}

/// Renders the FPS-scaling table.
pub fn render(report: &SuiteReport) -> String {
    let mut table = Table::new(
        ["app", "n", "server FPS", "client FPS", "dropped"]
            .map(String::from)
            .to_vec(),
    );
    for app in AppId::ALL {
        for n in 1..=4usize {
            let cell = report.cell(&scaling_label(app, n));
            let server = mean_over(&cell.instances, |m| m.report.server_fps);
            let client = mean_over(&cell.instances, |m| m.report.client_fps);
            let dropped: u64 = cell.instances.iter().map(|m| m.report.frames_dropped).sum();
            table.row(vec![
                app.code().into(),
                n.to_string(),
                fmt(server, 1),
                fmt(client, 1),
                dropped.to_string(),
            ]);
        }
    }
    format!(
        "{}Paper: ≥25 client FPS at 2 instances for all apps; at 3 for RE/IM/ITP.\n",
        table.render()
    )
}
