//! Fig 9: network and PCIe bandwidth usage per benchmark (single instance).
//!
//! Paper reference: frame traffic below 600 Mbps; input traffic ~1.5 Mbps;
//! PCIe below 5 GB/s with the GPU→CPU direction dominated by frame readback
//! and SuperTuxKart the CPU→GPU outlier.

use pictor_apps::AppId;
use pictor_core::report::{fmt, Table};
use pictor_core::{ScenarioGrid, SuiteReport};

use super::solos_grid;

/// One solo cell per benchmark.
pub fn grid(secs: u64, seed: u64) -> ScenarioGrid {
    solos_grid("fig09_net_pcie_bw", secs, seed)
}

/// Renders the bandwidth table.
pub fn render(report: &SuiteReport) -> String {
    let mut table = Table::new(
        [
            "app",
            "net down Mbps",
            "PCIe to GPU GB/s",
            "PCIe from GPU GB/s",
        ]
        .map(String::from)
        .to_vec(),
    );
    for app in AppId::ALL {
        let r = &report.cell(app.code()).solo().report;
        table.row(vec![
            app.code().into(),
            fmt(r.net_down_mbps, 0),
            fmt(r.pcie_up_gbps, 3),
            fmt(r.pcie_down_gbps, 3),
        ]);
    }
    format!(
        "{}Paper: net < 600 Mbps; PCIe < 5 GB/s; STK is the upload outlier;\n\
         all apps show heavy GPU→CPU traffic (frame readback).\n",
        table.render()
    )
}
