//! Fig 5 / Fig 21: a textual trace of the software pipeline, showing how
//! stages of consecutive frames overlap — and how the §6 two-step copy
//! changes the schedule.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use pictor_apps::AppId;
use pictor_core::{ScenarioGrid, SuiteReport};
use pictor_render::records::{Record, Stage};
use pictor_render::SystemConfig;
use pictor_sim::SimDuration;

/// Two cells — stock and optimized — with a ~120 ms measured window and raw
/// records retained for the trace.
pub fn grid(seed: u64) -> ScenarioGrid {
    ScenarioGrid::new("fig05_pipeline_trace", seed)
        .duration(SimDuration::from_millis(120))
        .workload("STK", vec![AppId::SuperTuxKart])
        .config("stock", SystemConfig::turbovnc_stock())
        .config("optimized", SystemConfig::optimized())
        .keep_records()
}

fn trace(out: &mut String, report: &SuiteReport, config: &str, label: &str) {
    let cell = report.lookup("STK", config, "lan", "human");
    let trace = cell.trace.as_ref().expect("fig05 grid retains records");
    let t0 = trace.window_start;
    let _ = writeln!(
        out,
        "--- {label}: SuperTuxKart, ~120 ms window, times in ms since window start ---"
    );
    let _ = writeln!(
        out,
        "{:>5} {:>13} {:>13} {:>13} {:>13} {:>13} {:>13}",
        "frame", "AL", "RD", "FC", "AS", "CP", "SS"
    );
    let mut frames: BTreeMap<u64, [Option<(f64, f64)>; 6]> = BTreeMap::new();
    for r in &trace.records {
        let Record::Span(span) = r else { continue };
        let Some(frame) = span.frame else { continue };
        let idx = match span.stage {
            Stage::Al => 0,
            Stage::Rd => 1,
            Stage::Fc => 2,
            Stage::As => 3,
            Stage::Cp => 4,
            Stage::Ss => 5,
            _ => continue,
        };
        let start = span.start.saturating_since(t0).as_millis_f64();
        let end = span.end.saturating_since(t0).as_millis_f64();
        frames.entry(frame).or_default()[idx] = Some((start, end));
    }
    let cell_fmt = |v: Option<(f64, f64)>| match v {
        Some((s, e)) => format!("{s:5.1}-{e:5.1}"),
        None => "-".to_string(),
    };
    for (frame, stages) in frames.iter().take(6) {
        let _ = writeln!(
            out,
            "{:>5} {:>13} {:>13} {:>13} {:>13} {:>13} {:>13}",
            frame,
            cell_fmt(stages[0]),
            cell_fmt(stages[1]),
            cell_fmt(stages[2]),
            cell_fmt(stages[3]),
            cell_fmt(stages[4]),
            cell_fmt(stages[5]),
        );
    }
    out.push('\n');
}

/// Renders both traces plus the reading guide.
pub fn render(report: &SuiteReport) -> String {
    let mut out = String::new();
    trace(&mut out, report, "stock", "stock TurboVNC (Fig 5)");
    trace(
        &mut out,
        report,
        "optimized",
        "optimized two-step copy (Fig 21)",
    );
    out.push_str("Read each row left to right: while frame k renders on the GPU (RD),\n");
    out.push_str("the logic thread copies frame k-1 (FC) — stock blocks in the copy;\n");
    out.push_str("optimized, the copy spans two passes and AL packs tighter.\n");
    out
}
