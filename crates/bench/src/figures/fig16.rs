//! Fig 16: GPU L2 and texture cache miss rates for 1–4 instances.
//!
//! Paper reference: moderate L2 miss rates except InMind; L2 rises with
//! co-location (interleaved frames thrash the shared cache) while the
//! private texture cache stays flat. (The paper could not read 0AD's GPU
//! counters — OpenGL 1.3; the simulation has no such limitation but we note
//! it for fidelity.)

use pictor_apps::AppId;
use pictor_core::report::{fmt, Table};
use pictor_core::{ScenarioGrid, SuiteReport};

use super::{scaling_grid, scaling_label};

/// Every benchmark at 1–4 co-located instances.
pub fn grid(secs: u64, seed: u64) -> ScenarioGrid {
    scaling_grid("fig16_gpu_missrate", secs, seed)
}

/// Renders GPU cache miss rates per cell.
pub fn render(report: &SuiteReport) -> String {
    let mut table = Table::new(
        ["app", "n", "L2 miss%", "texture miss%"]
            .map(String::from)
            .to_vec(),
    );
    for app in AppId::ALL {
        for n in 1..=4usize {
            let r = &report.cell(&scaling_label(app, n)).instances[0].report;
            table.row(vec![
                app.code().into(),
                n.to_string(),
                fmt(r.gpu_l2_miss_rate * 100.0, 1),
                fmt(r.texture_miss_rate * 100.0, 1),
            ]);
        }
    }
    format!(
        "{}Paper: L2 rises with n, texture flat (private); InMind is the outlier.\n\
         (The paper could not read 0AD's GPU PMUs — OpenGL 1.3.)\n",
        table.render()
    )
}
