//! Fig 13: application time broken into logic (AL), frame copy (FC) and the
//! parallel GPU rendering (RD), for 1–4 instances.
//!
//! Paper reference: frame copy dominates many benchmarks (the §6 target);
//! GPU rendering runs in parallel and is never the bottleneck; AL inflates
//! +235% and RD +133% at 4 instances.

use std::fmt::Write as _;

use pictor_apps::AppId;
use pictor_core::report::{fmt, Table};
use pictor_core::{ScenarioGrid, SuiteReport};
use pictor_render::records::Stage;

use super::{scaling_grid, scaling_label};

/// Every benchmark at 1–4 co-located instances.
pub fn grid(secs: u64, seed: u64) -> ScenarioGrid {
    scaling_grid("fig13_app_breakdown", secs, seed)
}

/// Renders the AL/FC/RD breakdown plus the 4-instance inflation summary.
pub fn render(report: &SuiteReport) -> String {
    let mut table = Table::new(
        ["app", "n", "AL ms", "FC ms", "RD ms (parallel)"]
            .map(String::from)
            .to_vec(),
    );
    let mut inflation = String::new();
    for app in AppId::ALL {
        let solo = &report.cell(&scaling_label(app, 1)).instances[0];
        let (al_solo, rd_solo) = (solo.stage_ms(Stage::Al), solo.stage_ms(Stage::Rd));
        for n in 1..=4usize {
            let m = &report.cell(&scaling_label(app, n)).instances[0];
            let al = m.stage_ms(Stage::Al);
            let rd = m.stage_ms(Stage::Rd);
            table.row(vec![
                app.code().into(),
                n.to_string(),
                fmt(al, 1),
                fmt(m.stage_ms(Stage::Fc), 1),
                fmt(rd, 1),
            ]);
            if n == 4 {
                let _ = writeln!(
                    inflation,
                    "{}: AL inflation at 4 instances {:+.0}%, RD {:+.0}%",
                    app.code(),
                    (al / al_solo - 1.0) * 100.0,
                    (rd / rd_solo - 1.0) * 100.0
                );
            }
        }
    }
    format!(
        "{inflation}\n{}Paper: FC dominates many apps; AL +235% and RD +133% at 4 instances.\n",
        table.render()
    )
}
