//! Fig 6: RTT distributions under Human, Intelligent Client, DeskBench,
//! Chen et al. and Slow-Motion, for all six benchmarks.
//!
//! Prints mean / p1 / p25 / p75 / p99 per (app, methodology) — the exact
//! series of the paper's Fig 6 box plots.

use pictor_apps::AppId;
use pictor_client::ic::IcTrainConfig;
use pictor_core::report::{fmt, Table};
use pictor_core::{CellReport, ScenarioGrid, SuiteReport};

use super::methods::{methodology_grid, METHOD_LABELS};

/// Solo runs of every benchmark under all five methodologies.
pub fn grid(secs: u64, seed: u64) -> ScenarioGrid {
    methodology_grid(
        "fig06_rtt_distributions",
        &AppId::ALL,
        secs,
        seed,
        IcTrainConfig::default(),
    )
}

/// The five-point RTT of a methodology cell (pipeline or analytic).
pub fn five_point(cell: &CellReport) -> (f64, f64, f64, f64, f64, usize) {
    if cell.instances.is_empty() {
        (
            cell.value("rtt_mean"),
            cell.value("rtt_p1"),
            cell.value("rtt_p25"),
            cell.value("rtt_p75"),
            cell.value("rtt_p99"),
            cell.value("inputs") as usize,
        )
    } else {
        let m = cell.solo();
        (
            m.rtt.mean,
            m.rtt.p1,
            m.rtt.p25,
            m.rtt.p75,
            m.rtt.p99,
            m.tracked_inputs,
        )
    }
}

/// Renders the per-(app, methodology) distribution table.
pub fn render(report: &SuiteReport) -> String {
    let mut table = Table::new(
        ["app", "method", "mean", "p1", "p25", "p75", "p99", "inputs"]
            .map(String::from)
            .to_vec(),
    );
    for app in AppId::ALL {
        for method in METHOD_LABELS {
            let cell = report.lookup(app.code(), "stock", "lan", method);
            let (mean, p1, p25, p75, p99, n) = five_point(cell);
            table.row(vec![
                app.code().into(),
                method.into(),
                fmt(mean, 1),
                fmt(p1, 1),
                fmt(p25, 1),
                fmt(p75, 1),
                fmt(p99, 1),
                n.to_string(),
            ]);
        }
    }
    format!(
        "{}RTT values in ms. Paper reference: IC tracks Human closely; DeskBench\n\
         shifts the distribution; Chen and Slow-Motion sit well below Human.\n",
        table.render()
    )
}
