//! §4 "Pictor Overhead Evaluation": FPS with and without the measurement
//! framework attached, and the effect of double-buffered GPU timer queries.
//!
//! Paper reference: 2.7% average FPS reduction (max 5%) with double
//! buffering; up to ~10% without it.

use std::fmt::Write as _;

use pictor_apps::AppId;
use pictor_core::report::{fmt, Table};
use pictor_core::{ScenarioGrid, SuiteReport};
use pictor_render::config::{MeasurementConfig, QueryBuffers};
use pictor_render::SystemConfig;

/// Every benchmark solo: no instrumentation, double-buffered queries
/// (Pictor as evaluated), single-buffered queries.
pub fn grid(secs: u64, seed: u64) -> ScenarioGrid {
    ScenarioGrid::new("overhead_eval", seed)
        .duration_secs(secs)
        .solos(AppId::ALL)
        .config(
            "native",
            SystemConfig {
                measurement: MeasurementConfig::disabled(),
                ..SystemConfig::turbovnc_stock()
            },
        )
        .config("double", SystemConfig::turbovnc_stock())
        .config(
            "single",
            SystemConfig {
                measurement: MeasurementConfig {
                    query_buffers: QueryBuffers::Single,
                    ..MeasurementConfig::pictor()
                },
                ..SystemConfig::turbovnc_stock()
            },
        )
}

/// Renders the instrumentation-overhead table.
pub fn render(report: &SuiteReport) -> String {
    let mut table = Table::new(
        ["app", "native FPS", "double-buf ovh%", "single-buf ovh%"]
            .map(String::from)
            .to_vec(),
    );
    let mut dsum = 0.0;
    let mut dmax: f64 = 0.0;
    let mut ssum = 0.0;
    for app in AppId::ALL {
        let fps = |config: &str| {
            report
                .lookup(app.code(), config, "lan", "human")
                .solo()
                .report
                .server_fps
        };
        let base = fps("native");
        let d_ovh = (1.0 - fps("double") / base) * 100.0;
        let s_ovh = (1.0 - fps("single") / base) * 100.0;
        dsum += d_ovh;
        dmax = dmax.max(d_ovh);
        ssum += s_ovh;
        table.row(vec![
            app.code().into(),
            fmt(base, 1),
            fmt(d_ovh, 1),
            fmt(s_ovh, 1),
        ]);
    }
    let n = AppId::ALL.len() as f64;
    let mut out = table.render();
    let _ = writeln!(
        out,
        "Average overhead: double-buffered {:.1}% (max {:.1}%), single-buffered {:.1}%.",
        dsum / n,
        dmax,
        ssum / n
    );
    out.push_str("Paper: 2.7% avg (max 5%) with double buffering; up to 10% without.\n");
    out
}
