//! Table 3: percentage error of each methodology's mean RTT versus the
//! human reference, per benchmark and on average.
//!
//! Paper reference values: Pictor-IC 1.6% avg (max 3.2%), DeskBench 11.6%,
//! Chen et al. 30.0%, Slow-Motion 27.9%.

use pictor_apps::AppId;
use pictor_client::ic::IcTrainConfig;
use pictor_core::report::{fmt, Table};
use pictor_core::{ScenarioGrid, SuiteReport};

use super::fig06::five_point;
use super::methods::methodology_grid;

/// Solo runs of `apps` under all five methodologies — parameterized so the
/// golden regression test can run a reduced, fast-training variant.
pub fn grid_for(apps: &[AppId], secs: u64, seed: u64, train: IcTrainConfig) -> ScenarioGrid {
    methodology_grid("table3_ic_errors", apps, secs, seed, train)
}

/// The full paper table: every benchmark, default IC training.
pub fn grid(secs: u64, seed: u64) -> ScenarioGrid {
    grid_for(&AppId::ALL, secs, seed, IcTrainConfig::default())
}

/// Mean-RTT percentage error of `method` versus the human reference, for
/// one app.
pub fn pct_err(report: &SuiteReport, app: AppId, method: &str) -> f64 {
    let reference = five_point(report.lookup(app.code(), "stock", "lan", "human")).0;
    let measured = five_point(report.lookup(app.code(), "stock", "lan", method)).0;
    ((measured - reference) / reference).abs() * 100.0
}

/// Renders the error table for the given apps (columns) and the average.
pub fn render_for(report: &SuiteReport, apps: &[AppId]) -> String {
    let mut header = vec!["method".to_string()];
    header.extend(apps.iter().map(|a| a.code().to_string()));
    header.push("Avg".into());
    let mut table = Table::new(header);
    for (name, method) in [
        ("Pictor", "ic"),
        ("DB", "deskbench"),
        ("CH", "chen"),
        ("SM", "slow-motion"),
    ] {
        let vals: Vec<f64> = apps.iter().map(|&a| pct_err(report, a, method)).collect();
        let avg = vals.iter().sum::<f64>() / vals.len() as f64;
        let mut cells = vec![name.to_string()];
        cells.extend(vals.iter().map(|v| format!("{}%", fmt(*v, 1))));
        cells.push(format!("{}%", fmt(avg, 1)));
        table.row(cells);
    }
    format!(
        "{}Paper: Pictor 1.6% avg (max 3.2%), DB 11.6%, CH 30.0%, SM 27.9%.\n",
        table.render()
    )
}

/// Renders the full table.
pub fn render(report: &SuiteReport) -> String {
    render_for(report, &AppId::ALL)
}
