//! The paper's load-generation methodologies as reusable [`Method`] axis
//! entries (Fig 6 / Table 3): human reference, intelligent client,
//! DeskBench replay, Chen et al. stage summing, Slow-Motion delay
//! injection.

use pictor_apps::AppId;
use pictor_baselines::deskbench::DeskBenchConfig;
use pictor_baselines::{chen_estimate, slow_motion_config, DeskBenchDriver};
use pictor_client::ic::{IcTrainConfig, IntelligentClient};
use pictor_client::record_session;
use pictor_core::{IcDriver, Method, ScenarioGrid};

/// The human reference sessions.
pub fn human() -> Method {
    Method::humans()
}

/// Pictor's intelligent client, trained per cell on a recorded human
/// session seeded from the cell's tree.
pub fn intelligent_client(train: IcTrainConfig) -> Method {
    Method::drivers("ic", move |_, app, seeds| {
        let ic = IntelligentClient::train(app, &seeds.child("ic-train"), train);
        Box::new(IcDriver::new(ic))
    })
}

/// DeskBench: record a human session, replay it gated on frame similarity.
pub fn deskbench() -> Method {
    Method::drivers("deskbench", |_, app, seeds| {
        let session = record_session(app, &seeds.child("db-record"), 900, 13.3);
        Box::new(DeskBenchDriver::new(session, DeskBenchConfig::default()))
    })
}

/// Chen et al.: analytic stage summing, no pipeline run.
pub fn chen() -> Method {
    Method::analytic("chen", |sc| {
        let est = chen_estimate(&sc.apps[0], &sc.config, sc.seed, sc.duration);
        let mut dist = est.rtt_ms;
        let n = dist.len();
        let fp = dist.five_point();
        vec![
            ("rtt_mean".into(), fp.mean),
            ("rtt_p1".into(), fp.p1),
            ("rtt_p25".into(), fp.p25),
            ("rtt_p75".into(), fp.p75),
            ("rtt_p99".into(), fp.p99),
            ("inputs".into(), n as f64),
        ]
    })
}

/// Slow-Motion benchmarking (Nieh et al.): human drivers on the
/// delay-injected serialized pipeline.
pub fn slow_motion() -> Method {
    Method::drivers_with_config(
        "slow-motion",
        |_, app, seeds| Box::new(pictor_render::HumanDriver::from_seeds(app, seeds)),
        slow_motion_config,
    )
}

/// Display order and labels of the five methodologies.
pub const METHOD_LABELS: [&str; 5] = ["human", "ic", "deskbench", "chen", "slow-motion"];

/// The Fig 6 / Table 3 grid: solo runs of `apps` under all five
/// methodologies.
pub fn methodology_grid(
    name: &str,
    apps: &[AppId],
    secs: u64,
    seed: u64,
    train: IcTrainConfig,
) -> ScenarioGrid {
    ScenarioGrid::new(name, seed)
        .duration_secs(secs)
        .solos(apps.iter().copied())
        .method(human())
        .method(intelligent_client(train))
        .method(deskbench())
        .method(chen())
        .method(slow_motion())
}
