//! Fleet sweep: deployment-level metrics the single-server figures cannot
//! show.
//!
//! A [`FleetGrid`] sweeps fleet size × arrival rate × placement policy over
//! the paper's six titles: sessions arrive (Poisson open-loop plus a
//! closed-loop population with think-time churn), a policy places or
//! rejects them, and servers advance in parallel. The reduced report is
//! what a capacity planner reads: utilization, rejection rate, tail
//! FPS/RTT percentiles (p50/p95/p99) and SLO-violation rates.

use pictor_apps::AppId;
use pictor_core::fleet::{
    ArrivalConfig, FirstFit, FleetGrid, FleetSuiteReport, InterferenceAware, LeastContended,
    WorkloadMix,
};
use pictor_core::report::Table;

/// The default mix: every paper title, uniformly.
pub fn mix() -> WorkloadMix {
    WorkloadMix::uniform(AppId::ALL)
}

/// The full sweep: {8, 16} servers × {moderate, saturating} arrivals ×
/// {first-fit, least-contended, interference-aware} — 12 fleet cells.
/// `secs` sets the fleet horizon (one 1 s measured epoch per second, min 2).
pub fn grid(secs: u64, seed: u64) -> FleetGrid {
    sized_grid(&[8, 16], secs, seed)
}

/// The sweep restricted to the given fleet sizes (the golden test pins the
/// 8-server slice to keep tier-1 wall-clock in check).
pub fn sized_grid(sizes: &[usize], secs: u64, seed: u64) -> FleetGrid {
    let mut grid = FleetGrid::new("fleet_sweep", mix(), seed)
        .epochs(secs.max(2))
        .rate(ArrivalConfig::moderate())
        .rate(ArrivalConfig::saturating())
        .policy(FirstFit)
        .policy(LeastContended)
        .policy(InterferenceAware);
    for &servers in sizes {
        grid = grid.size(servers);
    }
    grid
}

/// Renders the sweep: the per-cell summary table plus a short read-out.
pub fn render(report: &FleetSuiteReport) -> String {
    let mut out = report.summary_table();
    let mut detail = Table::new(
        ["cell", "peak", "FPS p95", "RTT p95 ms", "RTT p99 ms"]
            .map(String::from)
            .to_vec(),
    );
    for cell in report.cells() {
        detail.row(vec![
            format!("s{}/{}/{}", cell.servers, cell.arrivals, cell.policy),
            cell.peak_sessions.to_string(),
            format!("{:.1}", cell.fps.p95()),
            format!("{:.1}", cell.rtt.p95()),
            format!("{:.1}", cell.rtt.p99()),
        ]);
    }
    out.push('\n');
    out.push_str(&detail.render());
    out.push_str(
        "Deployment-level view: utilization and rejection come from the \
         placement/admission layer, tails and SLO violations from measured \
         per-epoch windows on every server.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_the_advertised_axes() {
        let grid = grid(2, 2020);
        assert_eq!(grid.len(), 12, "2 sizes x 2 rates x 3 policies");
        assert_eq!(grid.name(), "fleet_sweep");
    }

    #[test]
    fn small_slice_runs_and_renders() {
        let report = sized_grid(&[2], 2, 7).run_with_threads(2);
        report.assert_finite();
        let out = render(&report);
        assert!(out.contains("s2/moderate/first-fit"), "{out}");
        assert!(out.contains("interference-aware"), "{out}");
    }
}
