//! Fig 17 / §5.2.1: per-instance power when running 1–4 instances.
//!
//! Paper reference: each added instance raises total power by <20%; per-
//! instance power falls by 33%/50%/61% at 2/3/4 instances.

use pictor_apps::AppId;
use pictor_core::metrics::power_from_reports;
use pictor_core::report::{fmt, Table};
use pictor_core::{CellReport, ScenarioGrid, SuiteReport};
use pictor_hw::PowerModel;

use super::{scaling_grid, scaling_label};

/// Every benchmark at 1–4 co-located instances.
pub fn grid(secs: u64, seed: u64) -> ScenarioGrid {
    scaling_grid("fig17_power", secs, seed)
}

/// Wall power of one cell under the paper's server model.
pub fn cell_power(model: &PowerModel, cell: &CellReport) -> pictor_core::PowerBreakdown {
    let reports: Vec<_> = cell.instances.iter().map(|m| m.report.clone()).collect();
    power_from_reports(model, &reports)
}

/// Renders the power-scaling table.
pub fn render(report: &SuiteReport) -> String {
    let model = PowerModel::paper_default();
    let mut table = Table::new(
        [
            "app",
            "n",
            "total W",
            "per-inst W",
            "Δtotal%",
            "per-inst saving%",
        ]
        .map(String::from)
        .to_vec(),
    );
    for app in AppId::ALL {
        let mut prev_total = 0.0;
        let mut solo_per = 0.0;
        for n in 1..=4usize {
            let power = cell_power(&model, report.cell(&scaling_label(app, n)));
            let delta = if n == 1 {
                0.0
            } else {
                (power.total_watts / prev_total - 1.0) * 100.0
            };
            if n == 1 {
                solo_per = power.per_instance_watts;
            }
            let saving = (1.0 - power.per_instance_watts / solo_per) * 100.0;
            table.row(vec![
                app.code().into(),
                n.to_string(),
                fmt(power.total_watts, 0),
                fmt(power.per_instance_watts, 0),
                fmt(delta, 1),
                fmt(saving, 1),
            ]);
            prev_total = power.total_watts;
        }
    }
    format!(
        "{}Paper: <20% total increase per added instance; 33/50/61% per-instance\n\
         savings at 2/3/4 instances.\n",
        table.render()
    )
}
