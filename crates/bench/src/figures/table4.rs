//! Table 4: feature comparison between Pictor and prior VDI / cloud-gaming
//! performance-analysis work.

use pictor_baselines::{Capability, Methodology};
use pictor_core::report::Table;
use pictor_core::{Method, ScenarioGrid, SuiteReport};

/// One analytic cell per methodology, emitting each capability as a 0/1
/// value — the feature matrix routed through the unified suite report.
pub fn grid(seed: u64) -> ScenarioGrid {
    let mut grid = ScenarioGrid::new("table4_features", seed)
        .workload("features", Vec::<pictor_apps::App>::new());
    for m in Methodology::ALL {
        grid = grid.method(Method::analytic(m.label(), move |_| {
            Capability::ALL
                .iter()
                .map(|&cap| {
                    (
                        cap.label().to_string(),
                        f64::from(u8::from(m.supports(cap))),
                    )
                })
                .collect()
        }));
    }
    grid
}

/// Renders the capability matrix.
pub fn render(report: &SuiteReport) -> String {
    let mut header = vec!["Feature".to_string()];
    header.extend(Methodology::ALL.iter().map(|m| m.label().to_string()));
    let mut table = Table::new(header);
    for cap in Capability::ALL {
        let mut row = vec![cap.label().to_string()];
        for m in Methodology::ALL {
            let supported = report
                .lookup("features", "stock", "lan", m.label())
                .value(cap.label())
                > 0.5;
            row.push(if supported { "x" } else { "" }.to_string());
        }
        table.row(row);
    }
    table.render()
}
