//! Synthetic-workload sweep: the first scenarios outside Table 2.
//!
//! A deterministic family of generated applications
//! ([`pictor_apps::synthetic::generate_family`]) runs solo and co-located
//! against the paper suite's contention extremes — SuperTuxKart (the most
//! contentious co-runner, Fig 19) and 0 A.D. (the least) — demonstrating
//! that the data-driven [`App`] surface composes generated workloads with
//! built-in titles in one grid.

use pictor_apps::{generate_family, App, AppId};
use pictor_core::report::{fmt, Table};
use pictor_core::{ScenarioGrid, SuiteReport};
use pictor_sim::SeedTree;

/// Number of generated apps in the sweep family.
pub const FAMILY_SIZE: usize = 3;

/// The deterministic synthetic family for a master seed: same seed, same
/// apps, across every binary and test.
pub fn family(seed: u64) -> Vec<App> {
    generate_family("SYN", FAMILY_SIZE, &SeedTree::new(seed))
        .into_iter()
        .map(App::from)
        .collect()
}

/// Solo cells for every generated app plus `SYNi+STK` / `SYNi+0AD`
/// co-location pairs.
pub fn grid(secs: u64, seed: u64) -> ScenarioGrid {
    let family = family(seed);
    let mut grid = ScenarioGrid::new("synth_sweep", seed)
        .duration_secs(secs)
        .workload_specs(family.iter().cloned());
    for syn in &family {
        for co in [AppId::SuperTuxKart, AppId::ZeroAd] {
            grid = grid.workload(
                &format!("{}+{}", syn.code(), co.code()),
                vec![syn.clone(), co.spec()],
            );
        }
    }
    grid
}

/// Renders the sweep table: per workload, each instance's app, FPS and RTT.
pub fn render(report: &SuiteReport) -> String {
    let mut table = Table::new(
        ["workload", "instance", "server FPS", "client FPS", "RTT ms"]
            .map(String::from)
            .to_vec(),
    );
    for cell in report.cells() {
        for m in &cell.instances {
            table.row(vec![
                cell.scenario.workload.clone(),
                m.report.app.code().to_string(),
                fmt(m.report.server_fps, 1),
                fmt(m.report.client_fps, 1),
                fmt(m.rtt.mean, 1),
            ]);
        }
    }
    format!(
        "{}Generated apps (SYN*) sweep solo and against the paper's contention \
         extremes (STK most contentious, 0AD least) — workloads outside Table 2.\n",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_is_deterministic_per_seed() {
        assert_eq!(family(2020), family(2020));
        assert_ne!(family(2020), family(2021));
    }

    #[test]
    fn grid_covers_solos_and_pairs() {
        let grid = grid(1, 2020);
        let cells = grid.scenarios();
        assert_eq!(cells.len(), FAMILY_SIZE * 3);
        assert_eq!(cells[0].workload, "SYN0");
        assert_eq!(cells[0].apps.len(), 1);
        let pair = cells
            .iter()
            .find(|c| c.workload == "SYN0+STK")
            .expect("pair cell");
        assert_eq!(pair.apps.len(), 2);
        assert_eq!(pair.apps[1], AppId::SuperTuxKart);
    }

    #[test]
    fn sweep_runs_and_renders() {
        let report = grid(1, 7).run_with_threads(2);
        report.assert_finite();
        let out = render(&report);
        assert!(out.contains("SYN0") && out.contains("SYN2+0AD"), "{out}");
    }
}
