//! Fig 7: computer-vision (CNN) and input-generation (RNN) inference times
//! per benchmark, plus the implied actions-per-minute capability.
//!
//! Paper reference: 72.7 ms average CV, 1.9 ms input generation, ~804 APM
//! (faster than professional players' ~300 APM).

use pictor_apps::AppId;
use pictor_client::InferenceCostModel;
use pictor_core::report::{fmt, Table};
use pictor_core::{Method, ScenarioGrid, SuiteReport};
use pictor_hw::ClientSpec;

/// One analytic cell per benchmark evaluating the inference cost model.
pub fn grid(seed: u64) -> ScenarioGrid {
    ScenarioGrid::new("fig07_inference_time", seed)
        .solos(AppId::ALL)
        .method(Method::analytic("model", |sc| {
            let model = InferenceCostModel::new(ClientSpec::paper_client());
            let app = &sc.apps[0];
            vec![
                ("cv_ms".into(), model.cv_mean_ms(app)),
                ("rnn_ms".into(), model.rnn_mean_ms(app)),
                ("max_apm".into(), model.max_apm(app)),
            ]
        }))
}

/// Renders the per-benchmark inference-time table with the suite average.
pub fn render(report: &SuiteReport) -> String {
    let mut table = Table::new(
        ["app", "CV (ms)", "RNN (ms)", "max APM"]
            .map(String::from)
            .to_vec(),
    );
    let mut sums = (0.0, 0.0, 0.0);
    for app in AppId::ALL {
        let cell = report.cell(app.code());
        let (cv, rnn, apm) = (
            cell.value("cv_ms"),
            cell.value("rnn_ms"),
            cell.value("max_apm"),
        );
        sums.0 += cv;
        sums.1 += rnn;
        sums.2 += apm;
        table.row(vec![
            app.code().into(),
            fmt(cv, 1),
            fmt(rnn, 2),
            fmt(apm, 0),
        ]);
    }
    let n = AppId::ALL.len() as f64;
    table.row(vec![
        "Avg".into(),
        fmt(sums.0 / n, 1),
        fmt(sums.1 / n, 2),
        fmt(sums.2 / n, 0),
    ]);
    format!(
        "{}Paper: 72.7 ms avg CV, 1.9 ms avg input generation, ~804 APM.\n",
        table.render()
    )
}
