//! Fig 11: RTT broken into input-network (CS), server processing, and
//! frame-network (SS) time, for 1–4 instances of each benchmark.
//!
//! Paper reference: CS below 10 ms; SS 14–35 ms; server time 61–106 ms solo
//! and the dominant, growing component under co-location.

use pictor_apps::AppId;
use pictor_core::report::{fmt, Table};
use pictor_core::{ScenarioGrid, SuiteReport};
use pictor_render::records::Stage;

use super::{scaling_grid, scaling_label};

/// Every benchmark at 1–4 co-located instances.
pub fn grid(secs: u64, seed: u64) -> ScenarioGrid {
    scaling_grid("fig11_rtt_breakdown", secs, seed)
}

/// Renders the CS / server / SS breakdown of instance 0 per cell.
pub fn render(report: &SuiteReport) -> String {
    let mut table = Table::new(
        ["app", "n", "RTT ms", "CS ms", "server ms", "SS ms"]
            .map(String::from)
            .to_vec(),
    );
    for app in AppId::ALL {
        for n in 1..=4usize {
            let m = &report.cell(&scaling_label(app, n)).instances[0];
            table.row(vec![
                app.code().into(),
                n.to_string(),
                fmt(m.rtt.mean, 1),
                fmt(m.stage_ms(Stage::Cs), 1),
                fmt(m.server_time_ms, 1),
                fmt(m.stage_ms(Stage::Ss), 1),
            ]);
        }
    }
    format!(
        "{}Paper: CS < 10 ms, SS 14-35 ms, server 61-106 ms solo and dominant.\n",
        table.render()
    )
}
