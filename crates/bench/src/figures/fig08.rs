//! Fig 8: CPU and GPU utilization per benchmark (single instance), plus the
//! VNC proxy's CPU and the memory footprints discussed in §5.1.1.
//!
//! Paper reference: app CPU 68%–266%, VNC CPU 169%–243%, GPU 22%–53%,
//! memory 600 MB (D2) – ~4 GB (IM), GPU memory below 800 MB.

use pictor_apps::AppId;
use pictor_core::report::{fmt, Table};
use pictor_core::{ScenarioGrid, SuiteReport};

use super::solos_grid;

/// One solo cell per benchmark.
pub fn grid(secs: u64, seed: u64) -> ScenarioGrid {
    solos_grid("fig08_cpu_gpu_util", secs, seed)
}

/// Renders the utilization/footprint table.
pub fn render(report: &SuiteReport) -> String {
    let mut table = Table::new(
        [
            "app",
            "app CPU%",
            "VNC CPU%",
            "GPU%",
            "mem MiB",
            "GPU mem MiB",
        ]
        .map(String::from)
        .to_vec(),
    );
    for app in AppId::ALL {
        let r = &report.cell(app.code()).solo().report;
        table.row(vec![
            app.code().into(),
            fmt(r.app_cpu * 100.0, 0),
            fmt(r.vnc_cpu * 100.0, 0),
            fmt(r.gpu_util * 100.0, 0),
            r.memory_mib.to_string(),
            r.gpu_memory_mib.to_string(),
        ]);
    }
    format!(
        "{}Paper: app CPU 68-266%, VNC CPU 169-243%, GPU 22-53%.\n",
        table.render()
    )
}
