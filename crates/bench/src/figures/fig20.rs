//! Fig 20: containerization overhead — FPS reduction and RTT increase of
//! each benchmark inside an nvidia-docker-style container versus bare metal.
//!
//! Paper reference: ~1.5% average server-FPS overhead and ~1.3% RTT
//! overhead, with worst cases near 6%/8.5%; GPU rendering +2.9% on average;
//! occasional *negative* overheads where isolation reduces contention.

use std::fmt::Write as _;

use pictor_apps::AppId;
use pictor_core::report::{fmt, Table};
use pictor_core::{ScenarioGrid, SuiteReport};
use pictor_render::config::ContainerConfig;
use pictor_render::records::Stage;
use pictor_render::SystemConfig;

/// Every benchmark solo, bare metal vs containerized.
pub fn grid(secs: u64, seed: u64) -> ScenarioGrid {
    ScenarioGrid::new("fig20_container_overhead", seed)
        .duration_secs(secs)
        .solos(AppId::ALL)
        .config("bare", SystemConfig::turbovnc_stock())
        .config(
            "container",
            SystemConfig {
                container: Some(ContainerConfig::nvidia_docker()),
                ..SystemConfig::turbovnc_stock()
            },
        )
}

/// Renders per-app container overheads.
pub fn render(report: &SuiteReport) -> String {
    let mut table = Table::new(
        ["app", "FPS overhead%", "RTT overhead%", "RD overhead%"]
            .map(String::from)
            .to_vec(),
    );
    let mut fps_sum = 0.0;
    let mut rtt_sum = 0.0;
    for app in AppId::ALL {
        let b = report.lookup(app.code(), "bare", "lan", "human").solo();
        let c = report
            .lookup(app.code(), "container", "lan", "human")
            .solo();
        let fps_ovh = (1.0 - c.report.server_fps / b.report.server_fps) * 100.0;
        let rtt_ovh = (c.rtt.mean / b.rtt.mean - 1.0) * 100.0;
        let rd_ovh = (c.stage_ms(Stage::Rd) / b.stage_ms(Stage::Rd) - 1.0) * 100.0;
        fps_sum += fps_ovh;
        rtt_sum += rtt_ovh;
        table.row(vec![
            app.code().into(),
            fmt(fps_ovh, 1),
            fmt(rtt_ovh, 1),
            fmt(rd_ovh, 1),
        ]);
    }
    let n = AppId::ALL.len() as f64;
    let mut out = table.render();
    let _ = writeln!(
        out,
        "Average: FPS overhead {:.1}%, RTT overhead {:.1}%.",
        fps_sum / n,
        rtt_sum / n
    );
    out.push_str("Paper: 1.5% avg FPS, 1.3% avg RTT, worst ~6%/8.5%, GPU +2.9% avg;\n");
    out.push_str("negative overheads indicate contention relief from isolation.\n");
    out
}
