//! One module per paper figure/table: each declares its [`ScenarioGrid`]
//! and renders the reduced [`SuiteReport`] into the rows/series the paper
//! plots. The binaries under `src/bin/` are thin wrappers; keeping grids
//! here lets golden/smoke tests run the exact same scenarios.

pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig22;
pub mod fleet;
pub mod methods;
pub mod overhead;
pub mod synth;
pub mod table3;
pub mod table4;

use pictor_apps::AppId;
use pictor_core::{InstanceMetrics, ScenarioGrid};

/// The homogeneous co-location sweep behind Figs 10–17: every benchmark at
/// 1–4 instances, stock configuration.
pub fn scaling_grid(name: &str, secs: u64, seed: u64) -> ScenarioGrid {
    let mut grid = ScenarioGrid::new(name, seed).duration_secs(secs);
    for app in AppId::ALL {
        grid = grid.scaling(app, 1..=4);
    }
    grid
}

/// One solo cell per benchmark, stock configuration.
pub fn solos_grid(name: &str, secs: u64, seed: u64) -> ScenarioGrid {
    ScenarioGrid::new(name, seed)
        .duration_secs(secs)
        .solos(AppId::ALL)
}

/// The workload label of the `app × n` cells produced by
/// [`ScenarioGrid::scaling`].
pub fn scaling_label(app: AppId, n: usize) -> String {
    format!("{}x{n}", app.code())
}

/// Mean of one metric across a cell's co-located instances.
pub fn mean_over(instances: &[InstanceMetrics], f: impl Fn(&InstanceMetrics) -> f64) -> f64 {
    instances.iter().map(f).sum::<f64>() / instances.len().max(1) as f64
}
