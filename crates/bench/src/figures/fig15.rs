//! Fig 15: L3 cache miss rates for 1–4 instances of each benchmark.
//!
//! Paper reference: above 70% even solo (uncached CPU↔GPU communication
//! buffers), rising considerably with co-location.

use pictor_apps::AppId;
use pictor_core::report::{fmt, Table};
use pictor_core::{ScenarioGrid, SuiteReport};

use super::{scaling_grid, scaling_label};

/// Every benchmark at 1–4 co-located instances.
pub fn grid(secs: u64, seed: u64) -> ScenarioGrid {
    scaling_grid("fig15_l3_missrate", secs, seed)
}

/// Renders miss rates pivoted app × n.
pub fn render(report: &SuiteReport) -> String {
    let mut table = Table::new(
        ["app", "n=1", "n=2", "n=3", "n=4"]
            .map(String::from)
            .to_vec(),
    );
    for app in AppId::ALL {
        let mut cells = vec![app.code().to_string()];
        for n in 1..=4usize {
            let r = &report.cell(&scaling_label(app, n)).instances[0].report;
            cells.push(format!("{}%", fmt(r.l3_miss_rate * 100.0, 1)));
        }
        table.row(cells);
    }
    format!(
        "{}Paper: >70% solo, rising with instance count.\n",
        table.render()
    )
}
