//! Fig 14: Top-Down CPU cycle breakdown (retiring / front-end / bad
//! speculation / back-end) for 1–4 instances.
//!
//! Paper reference: long back-end stalls and low IPC for all benchmarks
//! (off-chip memory bound), worsening with co-location.

use pictor_apps::{AppId, AppProfile};
use pictor_core::report::{fmt, Table};
use pictor_core::{ScenarioGrid, SuiteReport};
use pictor_hw::pmu::TopDownModel;
use pictor_hw::CacheModel;

use super::{scaling_grid, scaling_label};

/// Every benchmark at 1–4 co-located instances.
pub fn grid(secs: u64, seed: u64) -> ScenarioGrid {
    scaling_grid("fig14_cpu_topdown", secs, seed)
}

/// Finds the pressure whose miss rate matches `target` (monotone bisection).
fn invert_miss_rate(model: &CacheModel, target: f64) -> f64 {
    let (mut lo, mut hi) = (0.0, 50.0);
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        if model.miss_rate(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

/// Renders the Top-Down breakdown derived from each cell's L3 miss rate.
pub fn render(report: &SuiteReport) -> String {
    let td_model = TopDownModel::paper_default();
    let mut table = Table::new(
        [
            "app",
            "n",
            "retire%",
            "frontend%",
            "badspec%",
            "backend%",
            "IPC",
        ]
        .map(String::from)
        .to_vec(),
    );
    for app in AppId::ALL {
        let profile = AppProfile::for_app(app);
        let l3 = CacheModel::new(profile.l3_base_miss, profile.l3_sensitivity);
        for n in 1..=4usize {
            let r = &report.cell(&scaling_label(app, n)).instances[0].report;
            // Reconstruct pressure from the miss rate via the profile curve,
            // then derive the cycle breakdown from the same pressure the
            // pipeline used.
            let pressure = invert_miss_rate(&l3, r.l3_miss_rate);
            let td = td_model.breakdown(&l3, pressure);
            table.row(vec![
                app.code().into(),
                n.to_string(),
                fmt(td.retiring * 100.0, 1),
                fmt(td.front_end * 100.0, 1),
                fmt(td.bad_speculation * 100.0, 1),
                fmt(td.back_end * 100.0, 1),
                fmt(td.ipc(4.0), 2),
            ]);
        }
    }
    format!(
        "{}Paper: back-end stalls dominate (memory bound) and grow with n.\n",
        table.render()
    )
}
