//! Stock-vs-optimized stage sanity (absorbs the old `dbg_re` debug binary):
//! the §6 optimizations must shrink the frame-copy stage and improve
//! RTT/FPS on Red Eclipse, and every reported stage mean must be finite.

use pictor_apps::AppId;
use pictor_core::ScenarioGrid;
use pictor_render::records::Stage;
use pictor_render::SystemConfig;

#[test]
fn optimized_pipeline_beats_stock_on_red_eclipse() {
    let report = ScenarioGrid::new("stage_regression", 2020)
        .duration_secs(5)
        .solo(AppId::RedEclipse)
        .config("stock", SystemConfig::turbovnc_stock())
        .config("opt", SystemConfig::optimized())
        .run_with_threads(2);
    report.assert_finite();
    let stock = report.lookup("RE", "stock", "lan", "human").solo();
    let opt = report.lookup("RE", "opt", "lan", "human").solo();
    for s in Stage::ALL {
        assert!(
            stock.stage_ms(s).is_finite() && opt.stage_ms(s).is_finite(),
            "{} stage mean not finite",
            s.label()
        );
    }
    assert!(
        opt.report.server_fps > stock.report.server_fps,
        "optimized server FPS {} must beat stock {}",
        opt.report.server_fps,
        stock.report.server_fps
    );
    assert!(
        opt.rtt.mean < stock.rtt.mean,
        "optimized RTT {} must beat stock {}",
        opt.rtt.mean,
        stock.rtt.mean
    );
    // Note: the FC *span* itself may lengthen under the two-step copy (it
    // stretches across two passes while blocking the logic thread less);
    // the win is throughput and RTT, asserted above.
}
