//! DeskBench/VNCplay-style record-and-replay input generation.
//!
//! DeskBench records (frame, action) pairs from a human session and replays
//! each action only when the currently displayed frame is "similar" to the
//! recorded one — which handles latency variation on 2D desktops, where an
//! icon either is or is not on screen. On 3D content (random objects,
//! viewing-angle-dependent pixels) the similarity test keeps failing, so the
//! replayer waits, times out, and issues the action late — the behavior the
//! paper blames for its 11.6% mean-RTT error.

use pictor_apps::world::DetectedObject;
use pictor_apps::Action;
use pictor_client::RecordedSession;
use pictor_gfx::Frame;
use pictor_render::driver::{ClientDriver, Reaction, DECISION_CADENCE_MS};
use pictor_sim::SimDuration;

/// Replay driver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeskBenchConfig {
    /// Mean-absolute-difference threshold under which two frames count as
    /// similar (the paper tuned this per DeskBench's methodology and used
    /// the best value found).
    pub similarity_threshold: f64,
    /// Frames to wait for a match before force-issuing the action.
    pub max_wait_frames: u32,
}

impl Default for DeskBenchConfig {
    fn default() -> Self {
        DeskBenchConfig {
            similarity_threshold: 0.012,
            max_wait_frames: 12,
        }
    }
}

/// The DeskBench replay driver.
///
/// Wraps a recorded human session; replays it in order, gated on frame
/// similarity, looping when the script runs out.
#[derive(Debug)]
pub struct DeskBenchDriver {
    session: RecordedSession,
    config: DeskBenchConfig,
    cursor: usize,
    waited: u32,
    matches: u64,
    timeouts: u64,
}

impl DeskBenchDriver {
    /// Creates a replayer over a recorded session.
    ///
    /// # Panics
    ///
    /// Panics if the session is empty.
    pub fn new(session: RecordedSession, config: DeskBenchConfig) -> Self {
        assert!(!session.is_empty(), "cannot replay an empty session");
        DeskBenchDriver {
            session,
            config,
            cursor: 0,
            waited: 0,
            matches: 0,
            timeouts: 0,
        }
    }

    /// Actions issued because the frame comparison matched.
    pub fn matches(&self) -> u64 {
        self.matches
    }

    /// Actions issued only because the wait timed out.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Fraction of issued actions that required a timeout — near 1.0 on 3D
    /// content, near 0.0 on static content.
    pub fn timeout_rate(&self) -> f64 {
        let total = self.matches + self.timeouts;
        if total == 0 {
            0.0
        } else {
            self.timeouts as f64 / total as f64
        }
    }

    fn advance_cursor(&mut self) {
        self.cursor = (self.cursor + 1) % self.session.len();
        self.waited = 0;
    }
}

impl ClientDriver for DeskBenchDriver {
    fn name(&self) -> &'static str {
        "deskbench"
    }

    fn on_frame(&mut self, frame: &Frame, _truth: &[DetectedObject]) -> Reaction {
        // Cheap replay bookkeeping: the comparison itself is fast.
        let busy = SimDuration::from_millis_f64(DECISION_CADENCE_MS);
        let latency = SimDuration::from_millis(20);
        let expected = &self.session.frames[self.cursor];
        let similar = frame.mean_abs_diff(expected) <= self.config.similarity_threshold;
        if similar {
            let action = self.session.actions[self.cursor];
            self.matches += 1;
            self.advance_cursor();
            return Reaction {
                action,
                latency,
                busy,
            };
        }
        self.waited += 1;
        if self.waited >= self.config.max_wait_frames {
            let action = self.session.actions[self.cursor];
            self.timeouts += 1;
            self.advance_cursor();
            return Reaction {
                action,
                latency,
                busy,
            };
        }
        Reaction {
            action: Action::idle(),
            latency,
            busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pictor_apps::AppId;
    use pictor_client::record_session;
    use pictor_sim::SeedTree;

    fn session(seed: u64) -> RecordedSession {
        record_session(AppId::RedEclipse, &SeedTree::new(seed), 200, 13.3)
    }

    #[test]
    fn replays_exact_frames_without_timeouts() {
        let s = session(1);
        let frames = s.frames.clone();
        let actions = s.actions.clone();
        let mut db = DeskBenchDriver::new(s, DeskBenchConfig::default());
        // Show the recorded frames in order: every step matches.
        for (i, frame) in frames.iter().enumerate().take(50) {
            let r = db.on_frame(frame, &[]);
            assert_eq!(r.action, actions[i], "step {i}");
        }
        assert_eq!(db.timeouts(), 0);
        assert_eq!(db.matches(), 50);
        assert_eq!(db.timeout_rate(), 0.0);
    }

    #[test]
    fn random_3d_frames_force_timeouts() {
        // Frames from a *different* session (same app, different seed): the
        // 3D randomness defeats pixel comparison.
        let s = session(2);
        let other = session(3);
        let mut db = DeskBenchDriver::new(s, DeskBenchConfig::default());
        let mut issued = 0;
        for frame in other.frames.iter().cycle().take(600) {
            if db.on_frame(frame, &[]).action.is_input() || db.matches() + db.timeouts() > 0 {
                issued += 1;
            }
        }
        assert!(issued > 0);
        assert!(
            db.timeout_rate() > 0.8,
            "3D frames should almost never match: rate {}",
            db.timeout_rate()
        );
    }

    #[test]
    fn waiting_delays_actions() {
        let s = session(4);
        let other = session(5);
        let mut db = DeskBenchDriver::new(s, DeskBenchConfig::default());
        // Count idle responses before the first issued action.
        let mut idles = 0;
        for frame in other.frames.iter().cycle() {
            let r = db.on_frame(frame, &[]);
            if r.action.is_input() || db.timeouts() + db.matches() > 0 {
                break;
            }
            idles += 1;
        }
        assert!(
            idles >= DeskBenchConfig::default().max_wait_frames as usize - 1,
            "replay must stall before timing out (idles={idles})"
        );
    }

    #[test]
    #[should_panic(expected = "empty session")]
    fn empty_session_panics() {
        let empty = RecordedSession {
            app: AppId::RedEclipse.into(),
            frames: vec![],
            truths: vec![],
            actions: vec![],
            fps: 30.0,
        };
        let _ = DeskBenchDriver::new(empty, DeskBenchConfig::default());
    }
}
