//! Chen et al.'s stage-summing RTT estimation.
//!
//! This methodology (IEEE ToM 2014) uses human players and no input
//! tracking; it cannot measure RTT at the client, so it *computes* it as the
//! sum of the stages it can see: `CS + SP + AL + CP + SS`. Two structural
//! errors follow (paper §4): the AL latency is measured **offline** without
//! the VNC proxy (losing app↔proxy contention), and the IPC stages (PS, FC,
//! AS) plus the input's queueing delay are invisible. The result
//! systematically underestimates the true RTT — by ~30% in the paper.

use pictor_apps::App;
use pictor_core::{run_experiment, ExperimentSpec};
use pictor_render::config::StageTuning;
use pictor_render::records::Stage;
use pictor_render::SystemConfig;
use pictor_sim::{Distribution, SimDuration};

/// The Chen et al. estimate for one benchmark.
#[derive(Debug, Clone)]
pub struct ChenEstimate {
    /// The application.
    pub app: App,
    /// Estimated RTT distribution (ms), built by summing per-input stage
    /// samples with AL replaced by the offline mean.
    pub rtt_ms: Distribution,
    /// The offline AL mean used (ms).
    pub offline_al_ms: f64,
}

/// Runs the methodology: an online session (human inputs) whose CS/SP/CP/SS
/// samples are combined with an **offline** AL measurement (same app, no VNC
/// proxy load).
pub fn chen_estimate(
    app: impl Into<App>,
    config: &SystemConfig,
    seed: u64,
    duration: SimDuration,
) -> ChenEstimate {
    let app: App = app.into();
    // Offline AL measurement: the game runs without a VNC proxy competing
    // for cache and cores.
    let offline_config = SystemConfig {
        tuning: StageTuning {
            vnc_pressure: 0.0,
            vnc_background_threads: 0,
            ..config.tuning.clone()
        },
        ..config.clone()
    };
    let offline = run_experiment(ExperimentSpec {
        duration,
        ..ExperimentSpec::with_humans(vec![app.clone()], offline_config, seed ^ 0x0ff1)
    });
    let offline_al_ms = offline.solo().stage_ms(Stage::Al);

    // Online session: collect the visible stages per tracked input.
    let online = run_experiment(ExperimentSpec {
        duration,
        ..ExperimentSpec::with_humans(vec![app.clone()], config.clone(), seed)
    });
    let metrics = online.solo();
    let mut rtt_ms = Distribution::new();
    // Chen et al. sum means of stages; to produce a comparable distribution
    // we sum per-input CS/SP samples with per-frame CP/SS means plus the
    // offline AL mean (their per-stage data was aggregate, not per-input).
    let cp = metrics.stage_ms(Stage::Cp);
    let ss = metrics.stage_ms(Stage::Ss);
    // Reconstruct per-input CS+SP variation from the tracker distributions.
    let cs_mean = metrics.stage_ms(Stage::Cs);
    let sp_mean = metrics.stage_ms(Stage::Sp);
    for _ in 0..metrics.tracked_inputs.max(1) {
        rtt_ms.record(cs_mean + sp_mean + offline_al_ms + cp + ss);
    }
    ChenEstimate {
        app,
        rtt_ms,
        offline_al_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pictor_apps::AppId;

    #[test]
    fn chen_underestimates_true_rtt() {
        let config = SystemConfig::turbovnc_stock();
        let duration = SimDuration::from_secs(15);
        let truth = run_experiment(ExperimentSpec {
            duration,
            ..ExperimentSpec::with_humans(vec![AppId::Dota2], config.clone(), 21)
        });
        let true_mean = truth.solo().rtt.mean;
        let est = chen_estimate(AppId::Dota2, &config, 21, duration);
        let est_mean = est.rtt_ms.mean();
        assert!(
            est_mean < true_mean * 0.9,
            "Chen must underestimate: est {est_mean} vs true {true_mean}"
        );
        // But it is not absurd — the big stages are there.
        assert!(
            est_mean > true_mean * 0.3,
            "est {est_mean} vs true {true_mean}"
        );
    }

    #[test]
    fn offline_al_not_larger_than_online() {
        let config = SystemConfig::turbovnc_stock();
        let duration = SimDuration::from_secs(12);
        let online = run_experiment(ExperimentSpec {
            duration,
            ..ExperimentSpec::with_humans(vec![AppId::SuperTuxKart], config.clone(), 22)
        });
        let online_al = online.solo().stage_ms(Stage::Al);
        let est = chen_estimate(AppId::SuperTuxKart, &config, 22, duration);
        assert!(
            est.offline_al_ms <= online_al * 1.05,
            "offline {} vs online {online_al}",
            est.offline_al_ms
        );
    }
}
