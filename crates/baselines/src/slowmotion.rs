//! Slow-Motion benchmarking (Nieh, Yang, Novik — ACM TOCS 2003).
//!
//! Slow-Motion injects delays so only one input/frame is processed at a
//! time: an input is sent, its frame is rendered, copied, compressed,
//! delivered — and only then does the next input go out. Associating inputs
//! with frames becomes trivial, but the measured system no longer runs at
//! full capacity: pipeline parallelism is gone and the app barely contends
//! with its proxy, so reported RTTs come out low (~27.9% error in the
//! paper). The mechanism lives in the rendering system
//! ([`pictor_render::config::PipelineMode::SlowMotion`]); this module just
//! builds the configuration.

use pictor_render::config::PipelineMode;
use pictor_render::SystemConfig;

/// The system configuration with Slow-Motion delay injection enabled.
pub fn slow_motion_config(base: &SystemConfig) -> SystemConfig {
    SystemConfig {
        mode: PipelineMode::SlowMotion,
        ..base.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pictor_apps::AppId;
    use pictor_core::{run_experiment, ExperimentSpec};
    use pictor_sim::SimDuration;

    #[test]
    fn slow_motion_reports_lower_rtt_than_full_pipeline() {
        let stock = SystemConfig::turbovnc_stock();
        let duration = SimDuration::from_secs(15);
        let full = run_experiment(ExperimentSpec {
            duration,
            ..ExperimentSpec::with_humans(vec![AppId::RedEclipse], stock.clone(), 31)
        });
        let sm = run_experiment(ExperimentSpec {
            duration,
            ..ExperimentSpec::with_humans(vec![AppId::RedEclipse], slow_motion_config(&stock), 31)
        });
        let full_rtt = full.solo().rtt.mean;
        let sm_rtt = sm.solo().rtt.mean;
        assert!(
            sm_rtt < full_rtt,
            "Slow-Motion must underestimate: sm {sm_rtt} vs full {full_rtt}"
        );
    }

    #[test]
    fn config_flips_only_the_mode() {
        let base = SystemConfig::turbovnc_stock();
        let sm = slow_motion_config(&base);
        assert_eq!(sm.mode, PipelineMode::SlowMotion);
        assert_eq!(sm.interposer, base.interposer);
        assert_eq!(sm.tuning, base.tuning);
    }
}
