//! Prior-work benchmarking methodologies (paper §4 "Comparison with Prior
//! Work" and Table 4).
//!
//! Three comparators are implemented with the same *mechanisms* the paper
//! attributes their errors to:
//!
//! * [`DeskBenchDriver`] — record-and-replay gated on frame similarity
//!   (DeskBench/VNCplay). Works for 2D desktops; on 3D content the same
//!   object never repeats pixel-exactly, so replay stalls and then fires
//!   late/bursty, distorting the workload (~11.6% mean-RTT error in the
//!   paper).
//! * [`chen`] — Chen et al.'s stage-summing estimate: no input tracking, so
//!   RTT ≈ CS + SP + AL(offline) + CP + SS, omitting the IPC stages and the
//!   queueing the pipeline actually adds (~30% error).
//! * [`slowmotion`] — Slow-Motion benchmarking: injected delays serialize
//!   the pipeline to one input/frame at a time, eliminating the parallelism
//!   and contention of a system at full capacity (~27.9% error).
//! * [`capabilities`] — the Table 4 feature matrix.

pub mod capabilities;
pub mod chen;
pub mod deskbench;
pub mod slowmotion;

pub use capabilities::{Capability, Methodology};
pub use chen::chen_estimate;
pub use deskbench::DeskBenchDriver;
pub use slowmotion::slow_motion_config;
