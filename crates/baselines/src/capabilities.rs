//! The Table 4 feature matrix: Pictor versus prior VDI / cloud-gaming
//! benchmarking work.

use std::fmt;

/// A benchmarking capability row of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Capability {
    /// Tolerates random/irregular UI objects (3D content).
    RandomUiObjectsTolerant,
    /// Tolerates varying network latency.
    VaryingNetLatencyTolerant,
    /// Tracks individual user inputs to their response frames.
    UserInputTracking,
    /// Measures CPU performance.
    CpuPerfMeasurement,
    /// Measures network performance.
    NetworkPerfMeasurement,
    /// Measures GPU performance.
    GpuPerfMeasurement,
    /// Measures PCIe frame-copy performance.
    PcieFrameCopyMeasurement,
    /// Leaves the 3D application's behavior unaltered while measuring.
    UnalteredAppBehavior,
}

impl Capability {
    /// All rows in the paper's order.
    pub const ALL: [Capability; 8] = [
        Capability::RandomUiObjectsTolerant,
        Capability::VaryingNetLatencyTolerant,
        Capability::UserInputTracking,
        Capability::CpuPerfMeasurement,
        Capability::NetworkPerfMeasurement,
        Capability::GpuPerfMeasurement,
        Capability::PcieFrameCopyMeasurement,
        Capability::UnalteredAppBehavior,
    ];

    /// Row label.
    pub fn label(&self) -> &'static str {
        match self {
            Capability::RandomUiObjectsTolerant => "Random UI Objects Tolerant",
            Capability::VaryingNetLatencyTolerant => "Varying Net Latency Tolerant",
            Capability::UserInputTracking => "User-input Tracking",
            Capability::CpuPerfMeasurement => "CPU Perf. Measurement",
            Capability::NetworkPerfMeasurement => "Network Perf. Measurement",
            Capability::GpuPerfMeasurement => "GPU Perf. Measurement",
            Capability::PcieFrameCopyMeasurement => "PCIe frame-copy Perf. Measure.",
            Capability::UnalteredAppBehavior => "Unaltered 3D App Behaviors",
        }
    }
}

/// A benchmarking methodology column of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Methodology {
    /// VNCplay (Zeldovich & Chandra, USENIX ATC 2005).
    VncPlay,
    /// Chen et al. (IEEE Transactions on Multimedia 2014).
    ChenEtAl,
    /// Slow-Motion benchmarking (Nieh et al., TOCS 2003).
    SlowMotion,
    /// Login-VSI (industry whitepaper, 2010).
    LoginVsi,
    /// DeskBench (Rhee et al., IM 2009).
    DeskBench,
    /// VDBench (Berryman et al., CloudCom 2010).
    VdBench,
    /// Dusi et al. (IEEE Communications Magazine 2012).
    DusiEtAl,
    /// This paper.
    Pictor,
}

impl Methodology {
    /// All columns in the paper's order.
    pub const ALL: [Methodology; 8] = [
        Methodology::VncPlay,
        Methodology::ChenEtAl,
        Methodology::SlowMotion,
        Methodology::LoginVsi,
        Methodology::DeskBench,
        Methodology::VdBench,
        Methodology::DusiEtAl,
        Methodology::Pictor,
    ];

    /// Column label.
    pub fn label(&self) -> &'static str {
        match self {
            Methodology::VncPlay => "VNCPlay",
            Methodology::ChenEtAl => "Chen et al.",
            Methodology::SlowMotion => "Slow-Motion",
            Methodology::LoginVsi => "Login-VSI",
            Methodology::DeskBench => "DeskBench",
            Methodology::VdBench => "VDBench",
            Methodology::DusiEtAl => "Dusi et al.",
            Methodology::Pictor => "Pictor",
        }
    }

    /// Whether this methodology provides `capability` (the checkmarks of
    /// Table 4).
    pub fn supports(&self, capability: Capability) -> bool {
        use Capability as C;
        use Methodology as M;
        match self {
            M::Pictor => true,
            M::VncPlay => matches!(c(capability), C::VaryingNetLatencyTolerant),
            M::DeskBench => matches!(
                c(capability),
                C::VaryingNetLatencyTolerant | C::CpuPerfMeasurement
            ),
            M::ChenEtAl => matches!(
                c(capability),
                C::CpuPerfMeasurement | C::NetworkPerfMeasurement | C::UnalteredAppBehavior
            ),
            M::SlowMotion => matches!(
                c(capability),
                C::UserInputTracking | C::CpuPerfMeasurement | C::NetworkPerfMeasurement
            ),
            M::LoginVsi => matches!(c(capability), C::CpuPerfMeasurement),
            M::VdBench => matches!(
                c(capability),
                C::CpuPerfMeasurement | C::NetworkPerfMeasurement
            ),
            M::DusiEtAl => matches!(
                c(capability),
                C::NetworkPerfMeasurement | C::UnalteredAppBehavior
            ),
        }
    }
}

// Identity helper so the match arms read as capability sets.
fn c(capability: Capability) -> Capability {
    capability
}

impl fmt::Display for Methodology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pictor_supports_everything() {
        for cap in Capability::ALL {
            assert!(Methodology::Pictor.supports(cap), "{cap:?}");
        }
    }

    #[test]
    fn only_pictor_handles_random_3d_objects() {
        for m in Methodology::ALL {
            let expected = m == Methodology::Pictor;
            assert_eq!(
                m.supports(Capability::RandomUiObjectsTolerant),
                expected,
                "{m:?}"
            );
        }
    }

    #[test]
    fn only_pictor_measures_gpu_and_pcie() {
        for m in Methodology::ALL {
            if m == Methodology::Pictor {
                continue;
            }
            assert!(!m.supports(Capability::GpuPerfMeasurement), "{m:?}");
            assert!(!m.supports(Capability::PcieFrameCopyMeasurement), "{m:?}");
        }
    }

    #[test]
    fn slow_motion_tracks_inputs_but_alters_behavior() {
        assert!(Methodology::SlowMotion.supports(Capability::UserInputTracking));
        assert!(!Methodology::SlowMotion.supports(Capability::UnalteredAppBehavior));
    }

    #[test]
    fn matrix_dimensions_match_table4() {
        assert_eq!(Capability::ALL.len(), 8);
        assert_eq!(Methodology::ALL.len(), 8);
        assert_eq!(Methodology::Pictor.to_string(), "Pictor");
    }
}
