//! Property tests pinning the blocked-GEMM kernels to the seed's naive
//! reference implementations over random shapes and values.
//!
//! The optimized kernels were designed to accumulate every output element
//! in the reference's exact term order, so they agree bit-for-bit on finite
//! inputs; these properties assert a 1e-6 relative tolerance (the
//! acceptance bar) but in practice observe exact equality.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use pictor_ml::{Conv2d, Lstm, Matrix, Scratch, Tensor4};

/// Relative-tolerance comparison: `|a-b| <= 1e-6 * max(1, |a|, |b|)`.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * 1.0_f64.max(a.abs()).max(b.abs())
}

/// Deterministic pseudo-random data vector (decoupled from the strategy
/// RNG so shapes and values vary independently).
fn data_vec(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
        })
        .collect()
}

proptest! {
    #[test]
    fn blocked_gemm_matches_reference(
        (m, k, n) in (1usize..24, 1usize..40, 1usize..24),
        seed in 0u64..1_000_000,
    ) {
        let a = Matrix::from_vec(m, k, data_vec(seed, m * k));
        let b = Matrix::from_vec(k, n, data_vec(seed ^ 0xABCD, k * n));
        let fast = a.matmul(&b);
        let slow = a.matmul_reference(&b);
        for (i, (&x, &y)) in fast.data().iter().zip(slow.data()).enumerate() {
            prop_assert!(close(x, y), "gemm {m}x{k}x{n} elem {i}: {x} vs {y}");
        }
    }

    #[test]
    fn gemm_with_sparse_lhs_matches_reference(
        (m, k, n) in (1usize..12, 1usize..24, 1usize..12),
        seed in 0u64..1_000_000,
    ) {
        // Zero-heavy lhs exercises the skip-zero fast path on both sides.
        let mut av = data_vec(seed, m * k);
        for (i, v) in av.iter_mut().enumerate() {
            if i % 3 != 0 {
                *v = 0.0;
            }
        }
        let a = Matrix::from_vec(m, k, av);
        let b = Matrix::from_vec(k, n, data_vec(seed ^ 0x5A5A, k * n));
        let fast = a.matmul(&b);
        let slow = a.matmul_reference(&b);
        prop_assert_eq!(fast.data(), slow.data());
    }

    #[test]
    fn im2col_conv_forward_matches_reference(
        (batch, in_ch, out_ch) in (1usize..4, 1usize..4, 1usize..5),
        (h, w) in (1usize..9, 1usize..9),
        ksize in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let k = 2 * ksize + 1; // 1 or 3
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut ws = Scratch::new();
        let conv = Conv2d::new(in_ch, out_ch, k, &mut rng);
        let x = Tensor4::from_vec(batch, in_ch, h, w, data_vec(seed, batch * in_ch * h * w));
        let fast = conv.infer(&x, &mut ws);
        let slow = conv.infer_reference(&x);
        for (i, (&a, &b)) in fast.data().iter().zip(slow.data()).enumerate() {
            prop_assert!(close(a, b), "conv {batch}x{in_ch}->{out_ch} {h}x{w} k{k} elem {i}: {a} vs {b}");
        }
    }

    #[test]
    fn im2col_conv_backward_matches_reference(
        (batch, in_ch, out_ch) in (1usize..3, 1usize..4, 1usize..4),
        (h, w) in (2usize..7, 2usize..7),
        seed in 0u64..1_000_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut ws = Scratch::new();
        let mut conv = Conv2d::new(in_ch, out_ch, 3, &mut rng);
        let x = Tensor4::from_vec(batch, in_ch, h, w, data_vec(seed, batch * in_ch * h * w));
        let d_out = Tensor4::from_vec(
            batch, out_ch, h, w,
            data_vec(seed ^ 0xF00D, batch * out_ch * h * w),
        );
        let y = conv.forward(&x, &mut ws);
        // Recover the pre-activation tensor the reference needs: forward's
        // ReLU output with sign information from a fresh reference run.
        let pre = conv.conv_forward_reference(&x);
        for (a, &b) in y.data().iter().zip(pre.data()) {
            prop_assert!(close(*a, b.max(0.0)), "forward drifted from reference");
        }
        let dx = conv.backward(&d_out, &mut ws);
        let (dx_ref, dw_ref, db_ref) = conv.backward_reference(&x, &pre, &d_out);
        for (i, (&a, &b)) in dx.data().iter().zip(dx_ref.data()).enumerate() {
            prop_assert!(close(a, b), "dx elem {i}: {a} vs {b}");
        }
        let grads: Vec<Vec<f64>> = conv
            .params_and_grads()
            .iter()
            .map(|(_, g)| g.to_vec())
            .collect();
        for (i, (&a, &b)) in grads[0].iter().zip(&dw_ref).enumerate() {
            prop_assert!(close(a, b), "dw elem {i}: {a} vs {b}");
        }
        for (i, (&a, &b)) in grads[1].iter().zip(&db_ref).enumerate() {
            prop_assert!(close(a, b), "db elem {i}: {a} vs {b}");
        }
    }

    #[test]
    fn batched_gate_lstm_matches_reference(
        (input_dim, hidden, batch, steps) in (1usize..6, 1usize..8, 1usize..4, 1usize..8),
        seed in 0u64..1_000_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut ws = Scratch::new();
        let mut lstm = Lstm::new(input_dim, hidden, &mut rng);
        let xs: Vec<Matrix> = (0..steps)
            .map(|t| Matrix::from_vec(
                batch, input_dim,
                data_vec(seed ^ (t as u64), batch * input_dim),
            ))
            .collect();
        let fast = lstm.infer(&xs, &mut ws);
        let slow = lstm.infer_reference(&xs);
        for (i, (&a, &b)) in fast.data().iter().zip(slow.data()).enumerate() {
            prop_assert!(close(a, b), "lstm infer elem {i}: {a} vs {b}");
        }
        // Cached-forward path must agree with the streaming path too.
        let fwd = lstm.forward(&xs, &mut ws);
        for (i, (&a, &b)) in fwd.data().iter().zip(slow.data()).enumerate() {
            prop_assert!(close(a, b), "lstm forward elem {i}: {a} vs {b}");
        }
    }
}
