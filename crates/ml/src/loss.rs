//! Losses: softmax cross-entropy (classification) and MSE (regression).

use crate::tensor::Matrix;

/// Row-wise softmax probabilities.
///
/// ```
/// use pictor_ml::{softmax_probs, Matrix};
/// let p = softmax_probs(&Matrix::row_vector(&[0.0, 0.0]));
/// assert!((p.get(0, 0) - 0.5).abs() < 1e-12);
/// ```
pub fn softmax_probs(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..logits.rows() {
        let row_max = logits
            .row(r)
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let mut denom = 0.0;
        for c in 0..logits.cols() {
            let e = (logits.get(r, c) - row_max).exp();
            out.set(r, c, e);
            denom += e;
        }
        for c in 0..logits.cols() {
            out.set(r, c, out.get(r, c) / denom);
        }
    }
    out
}

/// Mean softmax cross-entropy over the batch with one-hot `targets` given as
/// class indices. Returns `(loss, d_logits)` with the fused
/// `softmax - onehot` gradient (already divided by the batch size).
///
/// # Panics
///
/// Panics if a target class is out of range or batch sizes differ.
pub fn softmax_cross_entropy(logits: &Matrix, targets: &[usize]) -> (f64, Matrix) {
    assert_eq!(logits.rows(), targets.len(), "batch size mismatch");
    let probs = softmax_probs(logits);
    let batch = logits.rows() as f64;
    let mut loss = 0.0;
    let mut grad = probs.clone();
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < logits.cols(), "target class {t} out of range");
        loss -= probs.get(r, t).max(1e-300).ln();
        grad.set(r, t, grad.get(r, t) - 1.0);
    }
    (loss / batch, grad.scale(1.0 / batch))
}

/// Mean squared error over all elements. Returns `(loss, d_pred)`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mse_loss(pred: &Matrix, target: &Matrix) -> (f64, Matrix) {
    assert_eq!(
        (pred.rows(), pred.cols()),
        (target.rows(), target.cols()),
        "shape mismatch"
    );
    let n = (pred.rows() * pred.cols()) as f64;
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    for r in 0..pred.rows() {
        for c in 0..pred.cols() {
            let d = pred.get(r, c) - target.get(r, c);
            loss += d * d;
            grad.set(r, c, 2.0 * d / n);
        }
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let p = softmax_probs(&logits);
        for r in 0..2 {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        // Monotone in logits.
        assert!(p.get(0, 2) > p.get(0, 1) && p.get(0, 1) > p.get(0, 0));
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax_probs(&Matrix::row_vector(&[1.0, 2.0]));
        let b = softmax_probs(&Matrix::row_vector(&[1001.0, 1002.0]));
        assert!((a.get(0, 0) - b.get(0, 0)).abs() < 1e-12);
        // Huge logits do not overflow.
        let c = softmax_probs(&Matrix::row_vector(&[1e6, 0.0]));
        assert!((c.get(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let logits = Matrix::row_vector(&[100.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-12);
    }

    #[test]
    fn cross_entropy_uniform_is_log_k() {
        let logits = Matrix::row_vector(&[0.0, 0.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[2]);
        assert!((loss - 4.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Matrix::from_rows(&[&[0.3, -0.7, 1.2], &[2.0, 0.1, -0.4]]);
        let targets = [2usize, 0usize];
        let (_, grad) = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-6;
        for i in 0..logits.data().len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let (l1, _) = softmax_cross_entropy(&lp, &targets);
            lp.data_mut()[i] -= 2.0 * eps;
            let (l2, _) = softmax_cross_entropy(&lp, &targets);
            let n = (l1 - l2) / (2.0 * eps);
            assert!((grad.data()[i] - n).abs() < 1e-8, "idx {i}");
        }
    }

    #[test]
    fn mse_of_equal_matrices_is_zero() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let (loss, grad) = mse_loss(&a, &a);
        assert_eq!(loss, 0.0);
        assert_eq!(grad, Matrix::zeros(1, 2));
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let pred = Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.0]]);
        let target = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, -1.0]]);
        let (_, grad) = mse_loss(&pred, &target);
        let eps = 1e-6;
        for i in 0..pred.data().len() {
            let mut pp = pred.clone();
            pp.data_mut()[i] += eps;
            let (l1, _) = mse_loss(&pp, &target);
            pp.data_mut()[i] -= 2.0 * eps;
            let (l2, _) = mse_loss(&pp, &target);
            let n = (l1 - l2) / (2.0 * eps);
            assert!((grad.data()[i] - n).abs() < 1e-8, "idx {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_class_panics() {
        let _ = softmax_cross_entropy(&Matrix::row_vector(&[0.0, 0.0]), &[5]);
    }
}
