//! Fully-connected layer with backprop.
//!
//! Forward, inference and all three backward contractions run on the shared
//! blocked GEMM kernel (via [`Matrix::matmul`]-family calls); transposed
//! views are staged in a [`Scratch`] pool so the backward pass allocates
//! only its returned gradient.

use rand::rngs::SmallRng;

use crate::scratch::Scratch;
use crate::tensor::Matrix;

/// A dense layer `y = act(x·W + b)` over batched rows.
///
/// Supported activations: identity, ReLU and tanh.
///
/// ```
/// use pictor_ml::{Dense, Matrix};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let mut layer = Dense::new(3, 2, pictor_ml::dense::Activation::Relu, &mut rng);
/// let x = Matrix::zeros(4, 3);
/// let y = layer.forward(&x);
/// assert_eq!((y.rows(), y.cols()), (4, 2));
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    w: Matrix,
    b: Matrix,
    activation: Activation,
    // forward caches
    input: Option<Matrix>,
    pre_act: Option<Matrix>,
    // gradients
    dw: Matrix,
    db: Matrix,
}

/// Activation applied after the affine map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// No activation.
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    fn apply(&self, v: f64) -> f64 {
        match self {
            Activation::Identity => v,
            Activation::Relu => v.max(0.0),
            Activation::Tanh => v.tanh(),
        }
    }

    fn derivative(&self, pre: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if pre > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - pre.tanh().powi(2),
        }
    }
}

impl Dense {
    /// Creates a layer mapping `input_dim` → `output_dim` with Xavier
    /// weights.
    pub fn new(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        rng: &mut SmallRng,
    ) -> Self {
        Dense {
            w: Matrix::xavier(input_dim, output_dim, rng),
            b: Matrix::zeros(1, output_dim),
            activation,
            input: None,
            pre_act: None,
            dw: Matrix::zeros(input_dim, output_dim),
            db: Matrix::zeros(1, output_dim),
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass over a batch (`x: [batch, input_dim]`), caching for
    /// backprop.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut pre = x.matmul(&self.w);
        pre.add_row_broadcast_in_place(&self.b);
        let out = pre.map(|v| self.activation.apply(v));
        self.input = Some(x.clone());
        self.pre_act = Some(pre);
        out
    }

    /// Inference-only forward pass (no caches touched, one allocation for
    /// the returned output).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut out = x.matmul(&self.w);
        out.add_row_broadcast_in_place(&self.b);
        out.map_in_place(|v| self.activation.apply(v));
        out
    }

    /// Backward pass: consumes `d_out = ∂L/∂y`, accumulates `dW`/`db`,
    /// returns `∂L/∂x`. Intermediate transposes live in `ws`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Dense::forward`].
    pub fn backward(&mut self, d_out: &Matrix, ws: &mut Scratch) -> Matrix {
        let pre = self.pre_act.as_ref().expect("backward before forward");
        let x = self.input.as_ref().expect("backward before forward");
        let act = self.activation;
        let mut d_pre = ws.take_matrix(d_out.rows(), d_out.cols());
        for (dp, (&dv, &pv)) in d_pre
            .data_mut()
            .iter_mut()
            .zip(d_out.data().iter().zip(pre.data()))
        {
            *dp = dv * act.derivative(pv);
        }
        let mut xt = ws.take_matrix(x.cols(), x.rows());
        x.transpose_into(&mut xt);
        xt.matmul_into(&d_pre, &mut self.dw);
        ws.put_matrix(xt);
        self.db.fill_zero();
        for row in d_pre.data().chunks_exact(d_pre.cols()) {
            for (s, &v) in self.db.data_mut().iter_mut().zip(row) {
                *s += v;
            }
        }
        let mut wt = ws.take_matrix(self.w.cols(), self.w.rows());
        self.w.transpose_into(&mut wt);
        let dx = d_pre.matmul(&wt);
        ws.put_matrix(wt);
        ws.put_matrix(d_pre);
        dx
    }

    /// Parameter/gradient pairs for the optimizer.
    pub fn params_and_grads(&mut self) -> Vec<(&mut [f64], &[f64])> {
        vec![
            (self.w.data_mut(), self.dw.data()),
            (self.b.data_mut(), self.db.data()),
        ]
    }

    /// Immutable access to the weight matrix (tests, FLOP counting).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse_loss;
    use rand::SeedableRng;

    fn numeric_grad(
        layer: &mut Dense,
        x: &Matrix,
        target: &Matrix,
        param: usize,
        idx: usize,
        eps: f64,
    ) -> f64 {
        let perturb = |layer: &mut Dense, delta: f64| {
            let mut pg = layer.params_and_grads();
            pg[param].0[idx] += delta;
        };
        perturb(layer, eps);
        let y1 = layer.infer(x);
        let (l1, _) = mse_loss(&y1, target);
        perturb(layer, -2.0 * eps);
        let y2 = layer.infer(x);
        let (l2, _) = mse_loss(&y2, target);
        perturb(layer, eps);
        (l1 - l2) / (2.0 * eps)
    }

    #[test]
    fn gradient_check_identity_and_relu_and_tanh() {
        for act in [Activation::Identity, Activation::Relu, Activation::Tanh] {
            let mut rng = SmallRng::seed_from_u64(42);
            let mut ws = Scratch::new();
            let mut layer = Dense::new(4, 3, act, &mut rng);
            let x = Matrix::xavier(5, 4, &mut rng);
            let target = Matrix::xavier(5, 3, &mut rng);
            let y = layer.forward(&x);
            let (_, d_out) = mse_loss(&y, &target);
            layer.backward(&d_out, &mut ws);
            // Snapshot analytic grads.
            let analytic: Vec<Vec<f64>> = {
                let pg = layer.params_and_grads();
                pg.iter().map(|(_, g)| g.to_vec()).collect()
            };
            for (p, grads) in analytic.iter().enumerate() {
                for (i, &g) in grads.iter().enumerate().step_by(3) {
                    let n = numeric_grad(&mut layer, &x, &target, p, i, 1e-6);
                    assert!(
                        (g - n).abs() < 1e-6 + 1e-4 * n.abs(),
                        "{act:?} param {p} idx {i}: analytic {g} vs numeric {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn backward_input_gradient_checks() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut ws = Scratch::new();
        let mut layer = Dense::new(3, 2, Activation::Tanh, &mut rng);
        let x = Matrix::xavier(2, 3, &mut rng);
        let target = Matrix::xavier(2, 2, &mut rng);
        let y = layer.forward(&x);
        let (_, d_out) = mse_loss(&y, &target);
        let dx = layer.backward(&d_out, &mut ws);
        let eps = 1e-6;
        for i in 0..x.data().len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let (l1, _) = mse_loss(&layer.infer(&xp), &target);
            xp.data_mut()[i] -= 2.0 * eps;
            let (l2, _) = mse_loss(&layer.infer(&xp), &target);
            let n = (l1 - l2) / (2.0 * eps);
            let a = dx.data()[i];
            assert!((a - n).abs() < 1e-6 + 1e-4 * n.abs(), "idx {i}: {a} vs {n}");
        }
    }

    #[test]
    fn relu_zeroes_negatives() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut layer = Dense::new(1, 1, Activation::Relu, &mut rng);
        // Force a negative pre-activation.
        layer.w.set(0, 0, -5.0);
        let y = layer.forward(&Matrix::row_vector(&[1.0]));
        assert_eq!(y.get(0, 0), 0.0);
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut layer = Dense::new(4, 4, Activation::Tanh, &mut rng);
        let x = Matrix::xavier(3, 4, &mut rng);
        assert_eq!(layer.forward(&x), layer.infer(&x));
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_without_forward_panics() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut layer = Dense::new(2, 2, Activation::Identity, &mut rng);
        let _ = layer.backward(&Matrix::zeros(1, 2), &mut Scratch::new());
    }
}
