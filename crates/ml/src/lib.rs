//! A minimal neural-network library for the Pictor intelligent client.
//!
//! The paper trains a MobileNets CNN for object recognition and an LSTM for
//! input generation with TensorFlow (§3.1). This crate provides the
//! from-scratch equivalents used by `pictor-client`:
//!
//! * [`Matrix`] — a dense row-major `f64` matrix with the linear algebra the
//!   layers need.
//! * [`tensor::gemm_acc`] — the single cache-blocked GEMM kernel every
//!   layer's hot path lowers onto (conv via im2col, fused dense, batched
//!   LSTM gates).
//! * [`Scratch`] — a reusable buffer pool threaded through the hot paths so
//!   training and inference loops run allocation-free.
//! * [`Dense`] — fully-connected layer with backprop.
//! * [`Conv2d`] / [`MaxPool2`] — convolution and pooling over small images.
//! * [`Lstm`] — a single-layer LSTM with backpropagation through time.
//! * [`softmax_cross_entropy`] — classification loss with fused gradient.
//! * [`Adam`] — the optimizer.
//!
//! All layers are gradient-checked against finite differences in their unit
//! tests, and the GEMM-lowered kernels are additionally pinned to the
//! seed's naive reference implementations (`*_reference`) bit-for-bit — see
//! `tests/kernel_equivalence.rs`. Networks here are intentionally small —
//! the fidelity argument for the substitution (and the FLOP-cost model that
//! recovers paper-scale inference latency) lives in `pictor-client` and
//! `DESIGN.md`.

pub mod conv;
pub mod dense;
pub mod loss;
pub mod lstm;
pub mod optim;
pub mod scratch;
pub mod tensor;

pub use conv::{Conv2d, MaxPool2, Tensor4};
pub use dense::Dense;
pub use loss::{mse_loss, softmax_cross_entropy, softmax_probs};
pub use lstm::Lstm;
pub use optim::Adam;
pub use scratch::Scratch;
pub use tensor::Matrix;
