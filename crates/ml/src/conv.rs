//! 2-D convolution and pooling over small images.
//!
//! The intelligent client's vision network (the MobileNets stand-in) runs a
//! small convolution stack over frame cells. Layout is NCHW in a flat
//! [`Tensor4`].

use rand::rngs::SmallRng;
use rand::Rng;

/// A flat NCHW tensor.
///
/// ```
/// use pictor_ml::Tensor4;
/// let mut t = Tensor4::zeros(1, 3, 4, 4);
/// t.set(0, 2, 1, 1, 5.0);
/// assert_eq!(t.get(0, 2, 1, 1), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor4 {
    /// Batch size.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    data: Vec<f64>,
}

impl Tensor4 {
    /// A zero tensor.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Tensor4 {
            n,
            c,
            h,
            w,
            data: vec![0.0; n * c * h * w],
        }
    }

    /// Wraps a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n*c*h*w`.
    pub fn from_vec(n: usize, c: usize, h: usize, w: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * c * h * w, "shape mismatch");
        Tensor4 { n, c, h, w, data }
    }

    #[inline]
    fn idx(&self, n: usize, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && y < self.h && x < self.w);
        ((n * self.c + c) * self.h + y) * self.w + x
    }

    /// Element accessor.
    pub fn get(&self, n: usize, c: usize, y: usize, x: usize) -> f64 {
        self.data[self.idx(n, c, y, x)]
    }

    /// Element setter.
    pub fn set(&mut self, n: usize, c: usize, y: usize, x: usize, v: f64) {
        let i = self.idx(n, c, y, x);
        self.data[i] = v;
    }

    /// Flat storage.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat storage.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Flattens each batch element into a row of a `[n, c*h*w]` matrix.
    pub fn flatten(&self) -> crate::tensor::Matrix {
        crate::tensor::Matrix::from_vec(self.n, self.c * self.h * self.w, self.data.clone())
    }
}

/// Same-padding 3×3-style convolution with stride 1 and ReLU activation.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    k: usize,
    /// Weights laid out `[out_ch][in_ch][k][k]`.
    w: Vec<f64>,
    b: Vec<f64>,
    input: Option<Tensor4>,
    pre_act: Option<Tensor4>,
    dw: Vec<f64>,
    db: Vec<f64>,
}

impl Conv2d {
    /// Creates a convolution `in_ch → out_ch` with odd kernel size `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is even.
    pub fn new(in_ch: usize, out_ch: usize, k: usize, rng: &mut SmallRng) -> Self {
        assert!(k % 2 == 1, "kernel size must be odd, got {k}");
        let fan = (in_ch * k * k + out_ch * k * k) as f64;
        let bound = (6.0 / fan).sqrt();
        let w = (0..out_ch * in_ch * k * k)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Conv2d {
            in_ch,
            out_ch,
            k,
            w,
            b: vec![0.0; out_ch],
            input: None,
            pre_act: None,
            dw: vec![0.0; out_ch * in_ch * k * k],
            db: vec![0.0; out_ch],
        }
    }

    /// Number of multiply-accumulates for one forward pass over `h × w`
    /// input (for the FLOP-cost model).
    pub fn macs(&self, h: usize, w: usize) -> u64 {
        (self.out_ch * self.in_ch * self.k * self.k * h * w) as u64
    }

    #[inline]
    fn widx(&self, oc: usize, ic: usize, ky: usize, kx: usize) -> usize {
        ((oc * self.in_ch + ic) * self.k + ky) * self.k + kx
    }

    fn conv_forward(&self, x: &Tensor4) -> Tensor4 {
        assert_eq!(x.c, self.in_ch, "input channel mismatch");
        let pad = self.k / 2;
        let mut out = Tensor4::zeros(x.n, self.out_ch, x.h, x.w);
        for n in 0..x.n {
            for oc in 0..self.out_ch {
                for y in 0..x.h {
                    for xx in 0..x.w {
                        let mut acc = self.b[oc];
                        for ic in 0..self.in_ch {
                            for ky in 0..self.k {
                                let sy = y as isize + ky as isize - pad as isize;
                                if sy < 0 || sy >= x.h as isize {
                                    continue;
                                }
                                for kx in 0..self.k {
                                    let sx = xx as isize + kx as isize - pad as isize;
                                    if sx < 0 || sx >= x.w as isize {
                                        continue;
                                    }
                                    acc += self.w[self.widx(oc, ic, ky, kx)]
                                        * x.get(n, ic, sy as usize, sx as usize);
                                }
                            }
                        }
                        out.set(n, oc, y, xx, acc);
                    }
                }
            }
        }
        out
    }

    /// Forward pass with ReLU, caching for backprop.
    pub fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let pre = self.conv_forward(x);
        self.input = Some(x.clone());
        let out = Tensor4::from_vec(
            pre.n,
            pre.c,
            pre.h,
            pre.w,
            pre.data().iter().map(|&v| v.max(0.0)).collect(),
        );
        self.pre_act = Some(pre);
        out
    }

    /// Inference-only forward pass with ReLU.
    pub fn infer(&self, x: &Tensor4) -> Tensor4 {
        let pre = self.conv_forward(x);
        Tensor4::from_vec(
            pre.n,
            pre.c,
            pre.h,
            pre.w,
            pre.data().iter().map(|&v| v.max(0.0)).collect(),
        )
    }

    /// Backward pass: accumulates `dW`/`db`, returns `∂L/∂x`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Conv2d::forward`].
    pub fn backward(&mut self, d_out: &Tensor4) -> Tensor4 {
        let x = self.input.as_ref().expect("backward before forward");
        let pre = self.pre_act.as_ref().expect("backward before forward");
        let pad = self.k / 2;
        let mut dx = Tensor4::zeros(x.n, x.c, x.h, x.w);
        self.dw.iter_mut().for_each(|v| *v = 0.0);
        self.db.iter_mut().for_each(|v| *v = 0.0);
        for n in 0..x.n {
            for oc in 0..self.out_ch {
                for y in 0..x.h {
                    for xx in 0..x.w {
                        // ReLU gate.
                        if pre.get(n, oc, y, xx) <= 0.0 {
                            continue;
                        }
                        let g = d_out.get(n, oc, y, xx);
                        if g == 0.0 {
                            continue;
                        }
                        self.db[oc] += g;
                        for ic in 0..self.in_ch {
                            for ky in 0..self.k {
                                let sy = y as isize + ky as isize - pad as isize;
                                if sy < 0 || sy >= x.h as isize {
                                    continue;
                                }
                                for kx in 0..self.k {
                                    let sx = xx as isize + kx as isize - pad as isize;
                                    if sx < 0 || sx >= x.w as isize {
                                        continue;
                                    }
                                    let wi = self.widx(oc, ic, ky, kx);
                                    self.dw[wi] += g * x.get(n, ic, sy as usize, sx as usize);
                                    let di = dx.idx(n, ic, sy as usize, sx as usize);
                                    dx.data_mut()[di] += g * self.w[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    /// Parameter/gradient pairs for the optimizer.
    pub fn params_and_grads(&mut self) -> Vec<(&mut [f64], &[f64])> {
        vec![
            (&mut self.w[..], &self.dw[..]),
            (&mut self.b[..], &self.db[..]),
        ]
    }
}

/// 2×2 max pooling with stride 2 (truncating odd edges).
#[derive(Debug, Clone, Default)]
pub struct MaxPool2 {
    argmax: Vec<usize>,
    in_shape: (usize, usize, usize, usize),
}

impl MaxPool2 {
    /// Creates the pooling layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Output spatial size for an `h × w` input.
    pub fn out_size(h: usize, w: usize) -> (usize, usize) {
        (h / 2, w / 2)
    }

    /// Forward pass, caching argmax indices for backprop.
    pub fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let (oh, ow) = Self::out_size(x.h, x.w);
        let mut out = Tensor4::zeros(x.n, x.c, oh, ow);
        self.argmax = vec![0; x.n * x.c * oh * ow];
        self.in_shape = (x.n, x.c, x.h, x.w);
        let mut ai = 0;
        for n in 0..x.n {
            for c in 0..x.c {
                for y in 0..oh {
                    for xx in 0..ow {
                        let mut best = f64::NEG_INFINITY;
                        let mut best_idx = 0;
                        for dy in 0..2 {
                            for dxx in 0..2 {
                                let v = x.get(n, c, y * 2 + dy, xx * 2 + dxx);
                                if v > best {
                                    best = v;
                                    best_idx = x.idx(n, c, y * 2 + dy, xx * 2 + dxx);
                                }
                            }
                        }
                        out.set(n, c, y, xx, best);
                        self.argmax[ai] = best_idx;
                        ai += 1;
                    }
                }
            }
        }
        out
    }

    /// Inference-only forward pass.
    pub fn infer(&self, x: &Tensor4) -> Tensor4 {
        let (oh, ow) = Self::out_size(x.h, x.w);
        let mut out = Tensor4::zeros(x.n, x.c, oh, ow);
        for n in 0..x.n {
            for c in 0..x.c {
                for y in 0..oh {
                    for xx in 0..ow {
                        let mut best = f64::NEG_INFINITY;
                        for dy in 0..2 {
                            for dxx in 0..2 {
                                best = best.max(x.get(n, c, y * 2 + dy, xx * 2 + dxx));
                            }
                        }
                        out.set(n, c, y, xx, best);
                    }
                }
            }
        }
        out
    }

    /// Backward pass: routes gradients to the argmax positions.
    ///
    /// # Panics
    ///
    /// Panics if called before [`MaxPool2::forward`].
    pub fn backward(&mut self, d_out: &Tensor4) -> Tensor4 {
        assert!(!self.argmax.is_empty(), "backward before forward");
        let (n, c, h, w) = self.in_shape;
        let mut dx = Tensor4::zeros(n, c, h, w);
        for (ai, &src) in self.argmax.iter().enumerate() {
            dx.data_mut()[src] += d_out.data()[ai];
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn loss(y: &Tensor4, target: &Tensor4) -> (f64, Tensor4) {
        let n = y.data().len() as f64;
        let mut l = 0.0;
        let mut g = Tensor4::zeros(y.n, y.c, y.h, y.w);
        for i in 0..y.data().len() {
            let d = y.data()[i] - target.data()[i];
            l += d * d;
            g.data_mut()[i] = 2.0 * d / n;
        }
        (l / n, g)
    }

    #[test]
    fn identity_kernel_passes_input_through() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut conv = Conv2d::new(1, 1, 3, &mut rng);
        // Zero all weights, set center tap to 1 => identity (ReLU on
        // non-negative input is also identity).
        conv.w.iter_mut().for_each(|v| *v = 0.0);
        let ci = conv.widx(0, 0, 1, 1);
        conv.w[ci] = 1.0;
        let x = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.infer(&x);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_gradient_check() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut conv = Conv2d::new(2, 3, 3, &mut rng);
        let x = Tensor4::from_vec(
            2,
            2,
            4,
            4,
            (0..2 * 2 * 4 * 4)
                .map(|i| ((i * 37 % 17) as f64 - 8.0) / 8.0)
                .collect(),
        );
        let target = Tensor4::zeros(2, 3, 4, 4);
        let y = conv.forward(&x);
        let (_, d_out) = loss(&y, &target);
        let dx = conv.backward(&d_out);
        // Check a sample of weight gradients.
        let analytic_w = conv.dw.clone();
        let eps = 1e-6;
        for i in (0..conv.w.len()).step_by(7) {
            conv.w[i] += eps;
            let (l1, _) = loss(&conv.infer(&x), &target);
            conv.w[i] -= 2.0 * eps;
            let (l2, _) = loss(&conv.infer(&x), &target);
            conv.w[i] += eps;
            let num = (l1 - l2) / (2.0 * eps);
            assert!(
                (analytic_w[i] - num).abs() < 1e-7 + 1e-4 * num.abs(),
                "w[{i}]: {} vs {num}",
                analytic_w[i]
            );
        }
        // Check a sample of input gradients.
        let mut xp = x.clone();
        for i in (0..xp.data().len()).step_by(5) {
            xp.data_mut()[i] += eps;
            let (l1, _) = loss(&conv.infer(&xp), &target);
            xp.data_mut()[i] -= 2.0 * eps;
            let (l2, _) = loss(&conv.infer(&xp), &target);
            xp.data_mut()[i] += eps;
            let num = (l1 - l2) / (2.0 * eps);
            assert!(
                (dx.data()[i] - num).abs() < 1e-7 + 1e-4 * num.abs(),
                "x[{i}]: {} vs {num}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn maxpool_takes_maxima() {
        let x = Tensor4::from_vec(1, 1, 2, 4, vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, -1.0, 7.0]);
        let mut pool = MaxPool2::new();
        let y = pool.forward(&x);
        assert_eq!((y.h, y.w), (1, 2));
        assert_eq!(y.data(), &[5.0, 7.0]);
        assert_eq!(pool.infer(&x).data(), y.data());
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 9.0, 3.0, 4.0]);
        let mut pool = MaxPool2::new();
        let _ = pool.forward(&x);
        let d_out = Tensor4::from_vec(1, 1, 1, 1, vec![2.5]);
        let dx = pool.backward(&d_out);
        assert_eq!(dx.data(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn flatten_layout() {
        let t = Tensor4::from_vec(2, 1, 1, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let m = t.flatten();
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn macs_counts_scale() {
        let mut rng = SmallRng::seed_from_u64(1);
        let conv = Conv2d::new(3, 8, 3, &mut rng);
        assert_eq!(conv.macs(8, 6), 3 * 8 * 9 * 48);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernel_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = Conv2d::new(1, 1, 2, &mut rng);
    }
}
