//! 2-D convolution and pooling over small images.
//!
//! The intelligent client's vision network (the MobileNets stand-in) runs a
//! small convolution stack over frame cells. Layout is NCHW in a flat
//! [`Tensor4`].
//!
//! Forward and backward are both lowered onto the shared blocked GEMM
//! kernel ([`crate::tensor::gemm_acc`]) via im2col: the forward pass is one
//! `W [OC, C·k²] · panel [C·k², N·H·W]` product (transposed im2col, so the
//! wide position dimension feeds the register-tiled kernel), the weight
//! gradient is one `[OC, N·H·W] · [N·H·W, C·k²]` product, and the input
//! gradient is one `[IC, OC·k²] · [OC·k², N·H·W]` product over the
//! transposed im2col of the ReLU-masked output gradient against flipped
//! weights. The tap orderings are chosen so every output element
//! accumulates its terms in exactly the order the seed's 7-deep scalar
//! loops did — results are bit-identical
//! ([`Conv2d::infer_reference`] / [`Conv2d::backward_reference`] keep the
//! original loops as the checked reference).

use rand::rngs::SmallRng;
use rand::Rng;

use crate::scratch::Scratch;
use crate::tensor::gemm_acc;

/// A flat NCHW tensor.
///
/// ```
/// use pictor_ml::Tensor4;
/// let mut t = Tensor4::zeros(1, 3, 4, 4);
/// t.set(0, 2, 1, 1, 5.0);
/// assert_eq!(t.get(0, 2, 1, 1), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor4 {
    /// Batch size.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    data: Vec<f64>,
}

impl Tensor4 {
    /// A zero tensor.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Tensor4 {
            n,
            c,
            h,
            w,
            data: vec![0.0; n * c * h * w],
        }
    }

    /// Wraps a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n*c*h*w`.
    pub fn from_vec(n: usize, c: usize, h: usize, w: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * c * h * w, "shape mismatch");
        Tensor4 { n, c, h, w, data }
    }

    #[inline]
    fn idx(&self, n: usize, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && y < self.h && x < self.w);
        ((n * self.c + c) * self.h + y) * self.w + x
    }

    /// Element accessor.
    pub fn get(&self, n: usize, c: usize, y: usize, x: usize) -> f64 {
        self.data[self.idx(n, c, y, x)]
    }

    /// Element setter.
    pub fn set(&mut self, n: usize, c: usize, y: usize, x: usize, v: f64) {
        let i = self.idx(n, c, y, x);
        self.data[i] = v;
    }

    /// Flat storage.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat storage.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing storage (for returning
    /// buffers to a [`Scratch`] pool).
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Flattens each batch element into a row of a `[n, c*h*w]` matrix.
    pub fn flatten(&self) -> crate::tensor::Matrix {
        crate::tensor::Matrix::from_vec(self.n, self.c * self.h * self.w, self.data.clone())
    }
}

/// Writes the *transposed* im2col panel (`[c·k², n·h·w]`) — column `r`
/// per position, one row per kernel tap. This is the GEMM-friendly
/// orientation: the convolution becomes `W [OC, C·k²] · panel [C·k², R]`
/// with a wide `R` dimension for the register-tiled kernel, and both the
/// panel fill and the NCHW scatter are contiguous row copies. Every
/// element of `dst` is written (padding taps are zeroed explicitly), so
/// the buffer may hold arbitrary values on entry.
fn im2col_t(src: &Tensor4, k: usize, pad: usize, dst: &mut [f64]) {
    let (h, w) = (src.h, src.w);
    let hw = h * w;
    let rows = src.n * hw;
    debug_assert_eq!(dst.len(), src.c * k * k * rows);
    for c in 0..src.c {
        for ky in 0..k {
            // Valid y range: 0 <= y + ky - pad < h.
            let y0 = pad.saturating_sub(ky);
            let y1 = h.min(h.saturating_add(pad).saturating_sub(ky));
            for kx in 0..k {
                let out_row = ((c * k + ky) * k + kx) * rows;
                // Valid x range: 0 <= x + kx - pad < w.
                let x0 = pad.saturating_sub(kx);
                let x1 = w.min(w.saturating_add(pad).saturating_sub(kx));
                for n in 0..src.n {
                    let dst_plane = out_row + n * hw;
                    let src_plane = (n * src.c + c) * hw;
                    if x0 >= x1 || y0 >= y1 {
                        dst[dst_plane..dst_plane + hw]
                            .iter_mut()
                            .for_each(|v| *v = 0.0);
                        continue;
                    }
                    dst[dst_plane..dst_plane + y0 * w]
                        .iter_mut()
                        .for_each(|v| *v = 0.0);
                    if x0 == 0 && x1 == w {
                        // Full-width taps copy the whole valid block at once.
                        let sy0 = y0 + ky - pad;
                        let len = (y1 - y0) * w;
                        dst[dst_plane + y0 * w..dst_plane + y0 * w + len].copy_from_slice(
                            &src.data[src_plane + sy0 * w..src_plane + sy0 * w + len],
                        );
                    } else {
                        for y in y0..y1 {
                            let d = dst_plane + y * w;
                            let sy = y + ky - pad;
                            let sx0 = x0 + kx - pad;
                            dst[d..d + x0].iter_mut().for_each(|v| *v = 0.0);
                            dst[d + x0..d + x1].copy_from_slice(
                                &src.data[src_plane + sy * w + sx0
                                    ..src_plane + sy * w + sx0 + (x1 - x0)],
                            );
                            dst[d + x1..d + w].iter_mut().for_each(|v| *v = 0.0);
                        }
                    }
                    dst[dst_plane + y1 * w..dst_plane + hw]
                        .iter_mut()
                        .for_each(|v| *v = 0.0);
                }
            }
        }
    }
}

/// Same-padding 3×3-style convolution with stride 1 and ReLU activation.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    k: usize,
    /// Weights laid out `[out_ch][in_ch][k][k]`.
    w: Vec<f64>,
    b: Vec<f64>,
    /// Transposed im2col panel of the last `forward` input
    /// (`[in_ch·k², n·h·w]`), reused across calls; backward contracts the
    /// weight gradient directly against it.
    colt: Vec<f64>,
    /// Input geometry of the cached panel: `(n, h, w)`.
    fwd_shape: Option<(usize, usize, usize)>,
    pre_act: Option<Tensor4>,
    dw: Vec<f64>,
    db: Vec<f64>,
}

impl Conv2d {
    /// Creates a convolution `in_ch → out_ch` with odd kernel size `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is even.
    pub fn new(in_ch: usize, out_ch: usize, k: usize, rng: &mut SmallRng) -> Self {
        assert!(k % 2 == 1, "kernel size must be odd, got {k}");
        let fan = (in_ch * k * k + out_ch * k * k) as f64;
        let bound = (6.0 / fan).sqrt();
        let w = (0..out_ch * in_ch * k * k)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Conv2d {
            in_ch,
            out_ch,
            k,
            w,
            b: vec![0.0; out_ch],
            colt: Vec::new(),
            fwd_shape: None,
            pre_act: None,
            dw: vec![0.0; out_ch * in_ch * k * k],
            db: vec![0.0; out_ch],
        }
    }

    /// Number of multiply-accumulates for one forward pass over `h × w`
    /// input (for the FLOP-cost model).
    pub fn macs(&self, h: usize, w: usize) -> u64 {
        (self.out_ch * self.in_ch * self.k * self.k * h * w) as u64
    }

    #[inline]
    fn widx(&self, oc: usize, ic: usize, ky: usize, kx: usize) -> usize {
        ((oc * self.in_ch + ic) * self.k + ky) * self.k + kx
    }

    /// Runs the GEMM-lowered convolution over a prepared transposed
    /// im2col panel, writing pre-activation outputs (bias included) into
    /// `out_gt` (`[out_ch, n·h·w]`, bias-initialized here).
    ///
    /// Bias first, then accumulation in tap order — the same per-element
    /// order as the seed's scalar loop (acc starts from `b[oc]`).
    fn gemm_forward_t(&self, colt: &[f64], rows: usize, out_gt: &mut [f64]) {
        let kcols = self.in_ch * self.k * self.k;
        for (oc, row) in out_gt.chunks_exact_mut(rows).enumerate() {
            row.fill(self.b[oc]);
        }
        gemm_acc(self.out_ch, kcols, rows, &self.w, colt, out_gt);
    }

    /// Copies a `[channels, n·h·w]` channel-major panel into an NCHW
    /// tensor (contiguous row copies per `(n, channel)` pair).
    fn scatter_nchw(panel: &[f64], dst: &mut Tensor4) {
        let (n, ch, hw) = (dst.n, dst.c, dst.h * dst.w);
        let rows = n * hw;
        for ni in 0..n {
            for ci in 0..ch {
                let dst_base = (ni * ch + ci) * hw;
                let src_base = ci * rows + ni * hw;
                dst.data[dst_base..dst_base + hw].copy_from_slice(&panel[src_base..src_base + hw]);
            }
        }
    }

    /// Forward pass with ReLU, caching the input and pre-activations for
    /// backprop.
    pub fn forward(&mut self, x: &Tensor4, ws: &mut Scratch) -> Tensor4 {
        assert_eq!(x.c, self.in_ch, "input channel mismatch");
        let (n, h, w) = (x.n, x.h, x.w);
        let rows = n * h * w;
        let kcols = self.in_ch * self.k * self.k;
        if self.colt.len() != kcols * rows {
            self.colt.clear();
            self.colt.resize(kcols * rows, 0.0);
        }
        im2col_t(x, self.k, self.k / 2, &mut self.colt);
        self.fwd_shape = Some((n, h, w));
        let mut out_gt = ws.take_uninit(self.out_ch * rows);
        self.gemm_forward_t(&self.colt, rows, &mut out_gt);
        let mut pre = Tensor4::from_vec(n, self.out_ch, h, w, ws.take_uninit(rows * self.out_ch));
        Self::scatter_nchw(&out_gt, &mut pre);
        ws.put(out_gt);
        let mut out = Tensor4::from_vec(n, self.out_ch, h, w, ws.take_uninit(rows * self.out_ch));
        for (o, &p) in out.data.iter_mut().zip(&pre.data) {
            *o = p.max(0.0);
        }
        // The cached tensors are owned by the layer; recycle the previous
        // ones into the pool.
        if let Some(old) = self.pre_act.replace(pre) {
            ws.put(old.into_vec());
        }
        out
    }

    /// Inference-only forward pass with ReLU (no caches touched).
    pub fn infer(&self, x: &Tensor4, ws: &mut Scratch) -> Tensor4 {
        assert_eq!(x.c, self.in_ch, "input channel mismatch");
        let (n, h, w) = (x.n, x.h, x.w);
        let rows = n * h * w;
        let kcols = self.in_ch * self.k * self.k;
        let mut colt = ws.take_uninit(kcols * rows);
        im2col_t(x, self.k, self.k / 2, &mut colt);
        let mut out_gt = ws.take_uninit(self.out_ch * rows);
        self.gemm_forward_t(&colt, rows, &mut out_gt);
        ws.put(colt);
        let mut out = Tensor4::from_vec(n, self.out_ch, h, w, ws.take_uninit(rows * self.out_ch));
        Self::scatter_nchw(&out_gt, &mut out);
        ws.put(out_gt);
        for v in &mut out.data {
            *v = v.max(0.0);
        }
        out
    }

    /// Backward pass: accumulates `dW`/`db`, returns `∂L/∂x`.
    ///
    /// All three gradient contractions run on the shared kernels,
    /// term-ordered to match the seed's scalar loops bit-for-bit:
    /// `dW = G [OC, R] · panelᵀ` (a row-dot contraction against the
    /// transposed im2col panel the forward pass cached), `db = Σ_R G`, and
    /// `dx = flip(W) [IC, OC·k²] · im2colᵀ(G) [OC·k², R]` where `G` is the
    /// ReLU-masked output gradient (the flipped tap order walks the
    /// contributing output positions in exactly the seed's `(oc, y↑, x↑)`
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if called before [`Conv2d::forward`].
    pub fn backward(&mut self, d_out: &Tensor4, ws: &mut Scratch) -> Tensor4 {
        let (n, h, w) = self.fwd_shape.expect("backward before forward");
        let pre = self.pre_act.as_ref().expect("backward before forward");
        let rows = n * h * w;
        let hw = h * w;
        let kcols = self.in_ch * self.k * self.k;
        let (oc_n, k) = (self.out_ch, self.k);

        // ReLU-masked output gradient, NCHW (same layout as d_out).
        let mut g = Tensor4::from_vec(n, oc_n, h, w, ws.take_uninit(rows * oc_n));
        for ((gv, &dv), &pv) in g.data.iter_mut().zip(&d_out.data).zip(&pre.data) {
            *gv = if pv > 0.0 { dv } else { 0.0 };
        }

        // gT [out_ch, rows]: per-channel gradients in (n, y, x) order — the
        // db accumulation order of the seed's loops.
        let mut gt = ws.take_uninit(oc_n * rows);
        for ni in 0..n {
            for oc in 0..oc_n {
                let src = (ni * oc_n + oc) * hw;
                let dst = oc * rows + ni * hw;
                gt[dst..dst + hw].copy_from_slice(&g.data[src..src + hw]);
            }
        }
        for (oc, dbv) in self.db.iter_mut().enumerate() {
            *dbv = gt[oc * rows..(oc + 1) * rows].iter().sum();
        }
        ws.put(gt);
        // dW against the forward panel, transposed so the contraction runs
        // on the vector kernel: dwᵀ [C·k², OC] = panel [C·k², R] · g_rm
        // [R, OC]. Per element the positions accumulate in (n, y, x)
        // order — exactly the seed's — and the final transpose into `dw`
        // is a pure permutation.
        let mut g_rm = ws.take_uninit(rows * oc_n);
        for ni in 0..n {
            for oc in 0..oc_n {
                let src = (ni * oc_n + oc) * hw;
                for yx in 0..hw {
                    g_rm[(ni * hw + yx) * oc_n + oc] = g.data[src + yx];
                }
            }
        }
        let mut dwt = ws.take(kcols * oc_n);
        gemm_acc(kcols, rows, oc_n, &self.colt, &g_rm, &mut dwt);
        ws.put(g_rm);
        for oc in 0..oc_n {
            for kc in 0..kcols {
                self.dw[oc * kcols + kc] = dwt[kc * oc_n + oc];
            }
        }
        ws.put(dwt);

        // dx: transposed im2col of the masked gradient against flipped
        // weights. Tap row (oc, ky2↑, kx2↑) of the panel reads output
        // position (y - pad + ky2, x - pad + kx2), so increasing tap order
        // is exactly the seed's (oc, y↑, x↑) accumulation order.
        let mut colgt = ws.take_uninit(oc_n * k * k * rows);
        im2col_t(&g, k, k / 2, &mut colgt);
        ws.put(g.into_vec());
        let mut w2t = ws.take_uninit(self.in_ch * oc_n * k * k);
        for ic in 0..self.in_ch {
            for oc in 0..oc_n {
                for ky2 in 0..k {
                    for kx2 in 0..k {
                        w2t[ic * oc_n * k * k + (oc * k + ky2) * k + kx2] =
                            self.w[self.widx(oc, ic, k - 1 - ky2, k - 1 - kx2)];
                    }
                }
            }
        }
        let mut dxt = ws.take(self.in_ch * rows);
        gemm_acc(self.in_ch, oc_n * k * k, rows, &w2t, &colgt, &mut dxt);
        ws.put(colgt);
        ws.put(w2t);
        let mut dx = Tensor4::from_vec(n, self.in_ch, h, w, ws.take_uninit(rows * self.in_ch));
        Self::scatter_nchw(&dxt, &mut dx);
        ws.put(dxt);
        dx
    }

    /// Parameter/gradient pairs for the optimizer.
    pub fn params_and_grads(&mut self) -> Vec<(&mut [f64], &[f64])> {
        vec![
            (&mut self.w[..], &self.dw[..]),
            (&mut self.b[..], &self.db[..]),
        ]
    }

    // ------------------------------------------------------------------
    // Reference kernels: the seed's scalar loops, kept for equivalence
    // tests and the committed perf trajectory (`perf_report`).
    // ------------------------------------------------------------------

    /// The seed's 7-deep scalar-loop forward (pre-activation, bias
    /// included) — reference implementation.
    pub fn conv_forward_reference(&self, x: &Tensor4) -> Tensor4 {
        assert_eq!(x.c, self.in_ch, "input channel mismatch");
        let pad = self.k / 2;
        let mut out = Tensor4::zeros(x.n, self.out_ch, x.h, x.w);
        for n in 0..x.n {
            for oc in 0..self.out_ch {
                for y in 0..x.h {
                    for xx in 0..x.w {
                        let mut acc = self.b[oc];
                        for ic in 0..self.in_ch {
                            for ky in 0..self.k {
                                let sy = y as isize + ky as isize - pad as isize;
                                if sy < 0 || sy >= x.h as isize {
                                    continue;
                                }
                                for kx in 0..self.k {
                                    let sx = xx as isize + kx as isize - pad as isize;
                                    if sx < 0 || sx >= x.w as isize {
                                        continue;
                                    }
                                    acc += self.w[self.widx(oc, ic, ky, kx)]
                                        * x.get(n, ic, sy as usize, sx as usize);
                                }
                            }
                        }
                        out.set(n, oc, y, xx, acc);
                    }
                }
            }
        }
        out
    }

    /// Reference ReLU forward (inference semantics).
    pub fn infer_reference(&self, x: &Tensor4) -> Tensor4 {
        let mut pre = self.conv_forward_reference(x);
        for v in &mut pre.data {
            *v = v.max(0.0);
        }
        pre
    }

    /// The seed's scalar-loop backward — reference implementation. Takes
    /// the forward input and pre-activations explicitly (no caches) and
    /// returns `(dx, dw, db)`.
    #[allow(clippy::needless_range_loop)] // verbatim seed loops
    pub fn backward_reference(
        &self,
        x: &Tensor4,
        pre: &Tensor4,
        d_out: &Tensor4,
    ) -> (Tensor4, Vec<f64>, Vec<f64>) {
        let pad = self.k / 2;
        let mut dx = Tensor4::zeros(x.n, x.c, x.h, x.w);
        let mut dw = vec![0.0; self.w.len()];
        let mut db = vec![0.0; self.b.len()];
        for n in 0..x.n {
            for oc in 0..self.out_ch {
                for y in 0..x.h {
                    for xx in 0..x.w {
                        if pre.get(n, oc, y, xx) <= 0.0 {
                            continue;
                        }
                        let g = d_out.get(n, oc, y, xx);
                        if g == 0.0 {
                            continue;
                        }
                        db[oc] += g;
                        for ic in 0..self.in_ch {
                            for ky in 0..self.k {
                                let sy = y as isize + ky as isize - pad as isize;
                                if sy < 0 || sy >= x.h as isize {
                                    continue;
                                }
                                for kx in 0..self.k {
                                    let sx = xx as isize + kx as isize - pad as isize;
                                    if sx < 0 || sx >= x.w as isize {
                                        continue;
                                    }
                                    let wi = self.widx(oc, ic, ky, kx);
                                    dw[wi] += g * x.get(n, ic, sy as usize, sx as usize);
                                    let di = dx.idx(n, ic, sy as usize, sx as usize);
                                    dx.data[di] += g * self.w[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
        (dx, dw, db)
    }
}

/// 2×2 max pooling with stride 2 (truncating odd edges).
#[derive(Debug, Clone, Default)]
pub struct MaxPool2 {
    argmax: Vec<usize>,
    in_shape: (usize, usize, usize, usize),
}

impl MaxPool2 {
    /// Creates the pooling layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Output spatial size for an `h × w` input.
    pub fn out_size(h: usize, w: usize) -> (usize, usize) {
        (h / 2, w / 2)
    }

    /// Forward pass, caching argmax indices for backprop. The argmax buffer
    /// is reused across calls.
    pub fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let (oh, ow) = Self::out_size(x.h, x.w);
        let mut out = Tensor4::zeros(x.n, x.c, oh, ow);
        self.argmax.clear();
        self.argmax.resize(x.n * x.c * oh * ow, 0);
        self.in_shape = (x.n, x.c, x.h, x.w);
        let mut ai = 0;
        for n in 0..x.n {
            for c in 0..x.c {
                for y in 0..oh {
                    for xx in 0..ow {
                        let mut best = f64::NEG_INFINITY;
                        let mut best_idx = 0;
                        for dy in 0..2 {
                            for dxx in 0..2 {
                                let v = x.get(n, c, y * 2 + dy, xx * 2 + dxx);
                                if v > best {
                                    best = v;
                                    best_idx = x.idx(n, c, y * 2 + dy, xx * 2 + dxx);
                                }
                            }
                        }
                        out.set(n, c, y, xx, best);
                        self.argmax[ai] = best_idx;
                        ai += 1;
                    }
                }
            }
        }
        out
    }

    /// Inference-only forward pass.
    pub fn infer(&self, x: &Tensor4) -> Tensor4 {
        let (oh, ow) = Self::out_size(x.h, x.w);
        let mut out = Tensor4::zeros(x.n, x.c, oh, ow);
        for n in 0..x.n {
            for c in 0..x.c {
                for y in 0..oh {
                    for xx in 0..ow {
                        let mut best = f64::NEG_INFINITY;
                        for dy in 0..2 {
                            for dxx in 0..2 {
                                best = best.max(x.get(n, c, y * 2 + dy, xx * 2 + dxx));
                            }
                        }
                        out.set(n, c, y, xx, best);
                    }
                }
            }
        }
        out
    }

    /// Backward pass: routes gradients to the argmax positions.
    ///
    /// # Panics
    ///
    /// Panics if called before [`MaxPool2::forward`].
    pub fn backward(&mut self, d_out: &Tensor4) -> Tensor4 {
        assert!(!self.argmax.is_empty(), "backward before forward");
        let (n, c, h, w) = self.in_shape;
        let mut dx = Tensor4::zeros(n, c, h, w);
        for (ai, &src) in self.argmax.iter().enumerate() {
            dx.data_mut()[src] += d_out.data()[ai];
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn loss(y: &Tensor4, target: &Tensor4) -> (f64, Tensor4) {
        let n = y.data().len() as f64;
        let mut l = 0.0;
        let mut g = Tensor4::zeros(y.n, y.c, y.h, y.w);
        for i in 0..y.data().len() {
            let d = y.data()[i] - target.data()[i];
            l += d * d;
            g.data_mut()[i] = 2.0 * d / n;
        }
        (l / n, g)
    }

    #[test]
    fn identity_kernel_passes_input_through() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ws = Scratch::new();
        let mut conv = Conv2d::new(1, 1, 3, &mut rng);
        // Zero all weights, set center tap to 1 => identity (ReLU on
        // non-negative input is also identity).
        conv.w.iter_mut().for_each(|v| *v = 0.0);
        let ci = conv.widx(0, 0, 1, 1);
        conv.w[ci] = 1.0;
        let x = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.infer(&x, &mut ws);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn gemm_forward_matches_reference_bitwise() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut ws = Scratch::new();
        let conv = Conv2d::new(3, 5, 3, &mut rng);
        let x = Tensor4::from_vec(
            2,
            3,
            6,
            8,
            (0..2 * 3 * 6 * 8)
                .map(|i| ((i * 31 % 23) as f64 - 11.0) / 7.0)
                .collect(),
        );
        let fast = conv.infer(&x, &mut ws);
        let slow = conv.infer_reference(&x);
        assert_eq!(fast.data(), slow.data(), "im2col forward must be bit-exact");
    }

    #[test]
    fn gemm_backward_matches_reference_bitwise() {
        let mut rng = SmallRng::seed_from_u64(10);
        let mut ws = Scratch::new();
        let mut conv = Conv2d::new(2, 4, 3, &mut rng);
        let x = Tensor4::from_vec(
            2,
            2,
            5,
            7,
            (0..2 * 2 * 5 * 7)
                .map(|i| ((i * 17 % 13) as f64 - 6.0) / 5.0)
                .collect(),
        );
        let y = conv.forward(&x, &mut ws);
        let (_, d_out) = loss(&y, &Tensor4::zeros(2, 4, 5, 7));
        let pre = conv.pre_act.clone().unwrap();
        let dx = conv.backward(&d_out, &mut ws);
        let (dx_ref, dw_ref, db_ref) = conv.backward_reference(&x, &pre, &d_out);
        assert_eq!(dx.data(), dx_ref.data(), "dx must be bit-exact");
        assert_eq!(conv.dw, dw_ref, "dw must be bit-exact");
        assert_eq!(conv.db, db_ref, "db must be bit-exact");
    }

    #[test]
    fn conv_gradient_check() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut ws = Scratch::new();
        let mut conv = Conv2d::new(2, 3, 3, &mut rng);
        let x = Tensor4::from_vec(
            2,
            2,
            4,
            4,
            (0..2 * 2 * 4 * 4)
                .map(|i| ((i * 37 % 17) as f64 - 8.0) / 8.0)
                .collect(),
        );
        let target = Tensor4::zeros(2, 3, 4, 4);
        let y = conv.forward(&x, &mut ws);
        let (_, d_out) = loss(&y, &target);
        let dx = conv.backward(&d_out, &mut ws);
        // Check a sample of weight gradients.
        let analytic_w = conv.dw.clone();
        let eps = 1e-6;
        for i in (0..conv.w.len()).step_by(7) {
            conv.w[i] += eps;
            let (l1, _) = loss(&conv.infer(&x, &mut ws), &target);
            conv.w[i] -= 2.0 * eps;
            let (l2, _) = loss(&conv.infer(&x, &mut ws), &target);
            conv.w[i] += eps;
            let num = (l1 - l2) / (2.0 * eps);
            assert!(
                (analytic_w[i] - num).abs() < 1e-7 + 1e-4 * num.abs(),
                "w[{i}]: {} vs {num}",
                analytic_w[i]
            );
        }
        // Check a sample of input gradients.
        let mut xp = x.clone();
        for i in (0..xp.data().len()).step_by(5) {
            xp.data_mut()[i] += eps;
            let (l1, _) = loss(&conv.infer(&xp, &mut ws), &target);
            xp.data_mut()[i] -= 2.0 * eps;
            let (l2, _) = loss(&conv.infer(&xp, &mut ws), &target);
            xp.data_mut()[i] += eps;
            let num = (l1 - l2) / (2.0 * eps);
            assert!(
                (dx.data()[i] - num).abs() < 1e-7 + 1e-4 * num.abs(),
                "x[{i}]: {} vs {num}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn maxpool_takes_maxima() {
        let x = Tensor4::from_vec(1, 1, 2, 4, vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, -1.0, 7.0]);
        let mut pool = MaxPool2::new();
        let y = pool.forward(&x);
        assert_eq!((y.h, y.w), (1, 2));
        assert_eq!(y.data(), &[5.0, 7.0]);
        assert_eq!(pool.infer(&x).data(), y.data());
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 9.0, 3.0, 4.0]);
        let mut pool = MaxPool2::new();
        let _ = pool.forward(&x);
        let d_out = Tensor4::from_vec(1, 1, 1, 1, vec![2.5]);
        let dx = pool.backward(&d_out);
        assert_eq!(dx.data(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn flatten_layout() {
        let t = Tensor4::from_vec(2, 1, 1, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let m = t.flatten();
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn macs_counts_scale() {
        let mut rng = SmallRng::seed_from_u64(1);
        let conv = Conv2d::new(3, 8, 3, &mut rng);
        assert_eq!(conv.macs(8, 6), 3 * 8 * 9 * 48);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernel_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = Conv2d::new(1, 1, 2, &mut rng);
    }
}
