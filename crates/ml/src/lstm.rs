//! A single-layer LSTM with backpropagation through time.
//!
//! The intelligent client's input generator is an LSTM (the paper uses
//! Hochreiter–Schmidhuber LSTM via TensorFlow, §3.1). Gate layout in the
//! fused weight matrices is `[i | f | g | o]` (input, forget, candidate,
//! output).

use rand::rngs::SmallRng;

use crate::tensor::Matrix;

fn sigmoid(v: f64) -> f64 {
    1.0 / (1.0 + (-v).exp())
}

/// Recurrent state carried between steps during streaming inference.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    /// Hidden state `[batch, hidden]`.
    pub h: Matrix,
    /// Cell state `[batch, hidden]`.
    pub c: Matrix,
}

#[derive(Debug, Clone)]
struct StepCache {
    x: Matrix,
    h_prev: Matrix,
    c_prev: Matrix,
    i: Matrix,
    f: Matrix,
    g: Matrix,
    o: Matrix,
    c: Matrix,
}

/// A single-layer LSTM.
///
/// ```
/// use pictor_ml::{Lstm, Matrix};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let mut lstm = Lstm::new(3, 4, &mut rng);
/// let seq = vec![Matrix::zeros(2, 3), Matrix::zeros(2, 3)];
/// let h = lstm.forward(&seq);
/// assert_eq!((h.rows(), h.cols()), (2, 4));
/// ```
#[derive(Debug, Clone)]
pub struct Lstm {
    input_dim: usize,
    hidden_dim: usize,
    wx: Matrix, // [input, 4*hidden]
    wh: Matrix, // [hidden, 4*hidden]
    b: Matrix,  // [1, 4*hidden]
    caches: Vec<StepCache>,
    dwx: Matrix,
    dwh: Matrix,
    db: Matrix,
}

impl Lstm {
    /// Creates an LSTM with Xavier-initialized weights and forget-gate bias
    /// of 1 (standard trick for gradient flow).
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut SmallRng) -> Self {
        let mut b = Matrix::zeros(1, 4 * hidden_dim);
        for j in hidden_dim..2 * hidden_dim {
            b.set(0, j, 1.0);
        }
        Lstm {
            input_dim,
            hidden_dim,
            wx: Matrix::xavier(input_dim, 4 * hidden_dim, rng),
            wh: Matrix::xavier(hidden_dim, 4 * hidden_dim, rng),
            b,
            caches: Vec::new(),
            dwx: Matrix::zeros(input_dim, 4 * hidden_dim),
            dwh: Matrix::zeros(hidden_dim, 4 * hidden_dim),
            db: Matrix::zeros(1, 4 * hidden_dim),
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// A fresh zero state for a batch.
    pub fn zero_state(&self, batch: usize) -> LstmState {
        LstmState {
            h: Matrix::zeros(batch, self.hidden_dim),
            c: Matrix::zeros(batch, self.hidden_dim),
        }
    }

    /// Multiply-accumulate count for one step at batch 1 (FLOP-cost model).
    pub fn macs_per_step(&self) -> u64 {
        ((self.input_dim + self.hidden_dim) * 4 * self.hidden_dim) as u64
    }

    fn gates(&self, x: &Matrix, h_prev: &Matrix) -> (Matrix, Matrix, Matrix, Matrix) {
        let z = x
            .matmul(&self.wx)
            .add(&h_prev.matmul(&self.wh))
            .add_row_broadcast(&self.b);
        let hd = self.hidden_dim;
        let batch = x.rows();
        let mut i = Matrix::zeros(batch, hd);
        let mut f = Matrix::zeros(batch, hd);
        let mut g = Matrix::zeros(batch, hd);
        let mut o = Matrix::zeros(batch, hd);
        for r in 0..batch {
            for j in 0..hd {
                i.set(r, j, sigmoid(z.get(r, j)));
                f.set(r, j, sigmoid(z.get(r, hd + j)));
                g.set(r, j, z.get(r, 2 * hd + j).tanh());
                o.set(r, j, sigmoid(z.get(r, 3 * hd + j)));
            }
        }
        (i, f, g, o)
    }

    /// One streaming step: updates `state` in place and returns the new
    /// hidden output.
    pub fn step(&self, state: &mut LstmState, x: &Matrix) -> Matrix {
        let (i, f, g, o) = self.gates(x, &state.h);
        let c = f.hadamard(&state.c).add(&i.hadamard(&g));
        let h = o.hadamard(&c.map(f64::tanh));
        state.c = c;
        state.h = h.clone();
        h
    }

    /// Forward pass over a sequence (`xs[t]: [batch, input]`), caching every
    /// step for BPTT. Returns the final hidden state `[batch, hidden]`.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence.
    pub fn forward(&mut self, xs: &[Matrix]) -> Matrix {
        assert!(!xs.is_empty(), "empty sequence");
        let batch = xs[0].rows();
        self.caches.clear();
        let mut state = self.zero_state(batch);
        for x in xs {
            let h_prev = state.h.clone();
            let c_prev = state.c.clone();
            let (i, f, g, o) = self.gates(x, &h_prev);
            let c = f.hadamard(&c_prev).add(&i.hadamard(&g));
            let h = o.hadamard(&c.map(f64::tanh));
            self.caches.push(StepCache {
                x: x.clone(),
                h_prev,
                c_prev,
                i,
                f,
                g,
                o,
                c: c.clone(),
            });
            state.c = c;
            state.h = h;
        }
        state.h
    }

    /// Inference-only forward pass returning the final hidden state.
    pub fn infer(&self, xs: &[Matrix]) -> Matrix {
        assert!(!xs.is_empty(), "empty sequence");
        let mut state = self.zero_state(xs[0].rows());
        let mut h = state.h.clone();
        for x in xs {
            h = self.step(&mut state, x);
        }
        h
    }

    /// BPTT from a gradient on the final hidden state. Accumulates weight
    /// gradients and returns per-step input gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Lstm::forward`].
    pub fn backward(&mut self, d_h_last: &Matrix) -> Vec<Matrix> {
        assert!(!self.caches.is_empty(), "backward before forward");
        let hd = self.hidden_dim;
        let batch = d_h_last.rows();
        self.dwx = Matrix::zeros(self.input_dim, 4 * hd);
        self.dwh = Matrix::zeros(hd, 4 * hd);
        self.db = Matrix::zeros(1, 4 * hd);
        let mut d_h = d_h_last.clone();
        let mut d_c = Matrix::zeros(batch, hd);
        let mut dxs = vec![Matrix::zeros(batch, self.input_dim); self.caches.len()];
        for t in (0..self.caches.len()).rev() {
            let cache = &self.caches[t];
            let tanh_c = cache.c.map(f64::tanh);
            // dL/do and the carry into dL/dc.
            let d_o = d_h.hadamard(&tanh_c);
            let one_minus_tc2 = tanh_c.map(|v| 1.0 - v * v);
            d_c = d_c.add(&d_h.hadamard(&cache.o).hadamard(&one_minus_tc2));
            let d_i = d_c.hadamard(&cache.g);
            let d_f = d_c.hadamard(&cache.c_prev);
            let d_g = d_c.hadamard(&cache.i);
            // Pre-activation gradients (σ' = σ(1-σ), tanh' = 1-tanh²).
            let dz_i = {
                let mut m = Matrix::zeros(batch, hd);
                for r in 0..batch {
                    for j in 0..hd {
                        let iv = cache.i.get(r, j);
                        m.set(r, j, d_i.get(r, j) * iv * (1.0 - iv));
                    }
                }
                m
            };
            let dz_f = {
                let mut m = Matrix::zeros(batch, hd);
                for r in 0..batch {
                    for j in 0..hd {
                        let fv = cache.f.get(r, j);
                        m.set(r, j, d_f.get(r, j) * fv * (1.0 - fv));
                    }
                }
                m
            };
            let dz_g = {
                let mut m = Matrix::zeros(batch, hd);
                for r in 0..batch {
                    for j in 0..hd {
                        let gv = cache.g.get(r, j);
                        m.set(r, j, d_g.get(r, j) * (1.0 - gv * gv));
                    }
                }
                m
            };
            let dz_o = {
                let mut m = Matrix::zeros(batch, hd);
                for r in 0..batch {
                    for j in 0..hd {
                        let ov = cache.o.get(r, j);
                        m.set(r, j, d_o.get(r, j) * ov * (1.0 - ov));
                    }
                }
                m
            };
            // Fused dz: [batch, 4H].
            let mut dz = Matrix::zeros(batch, 4 * hd);
            for r in 0..batch {
                for j in 0..hd {
                    dz.set(r, j, dz_i.get(r, j));
                    dz.set(r, hd + j, dz_f.get(r, j));
                    dz.set(r, 2 * hd + j, dz_g.get(r, j));
                    dz.set(r, 3 * hd + j, dz_o.get(r, j));
                }
            }
            self.dwx = self.dwx.add(&cache.x.transpose().matmul(&dz));
            self.dwh = self.dwh.add(&cache.h_prev.transpose().matmul(&dz));
            self.db = self.db.add(&dz.sum_rows());
            dxs[t] = dz.matmul(&self.wx.transpose());
            d_h = dz.matmul(&self.wh.transpose());
            d_c = d_c.hadamard(&cache.f);
        }
        dxs
    }

    /// Parameter/gradient pairs for the optimizer.
    pub fn params_and_grads(&mut self) -> Vec<(&mut [f64], &[f64])> {
        vec![
            (self.wx.data_mut(), self.dwx.data()),
            (self.wh.data_mut(), self.dwh.data()),
            (self.b.data_mut(), self.db.data()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse_loss;
    use rand::SeedableRng;

    fn make_seq(rng: &mut SmallRng, t: usize, batch: usize, dim: usize) -> Vec<Matrix> {
        (0..t).map(|_| Matrix::xavier(batch, dim, rng)).collect()
    }

    #[test]
    fn forward_shapes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut lstm = Lstm::new(3, 5, &mut rng);
        let xs = make_seq(&mut rng, 4, 2, 3);
        let h = lstm.forward(&xs);
        assert_eq!((h.rows(), h.cols()), (2, 5));
        assert_eq!(lstm.infer(&xs), h);
    }

    #[test]
    fn step_matches_forward() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut lstm = Lstm::new(3, 4, &mut rng);
        let xs = make_seq(&mut rng, 5, 1, 3);
        let h_forward = lstm.forward(&xs);
        let mut state = lstm.zero_state(1);
        let mut h_step = Matrix::zeros(1, 4);
        for x in &xs {
            h_step = lstm.step(&mut state, x);
        }
        for i in 0..4 {
            assert!((h_forward.get(0, i) - h_step.get(0, i)).abs() < 1e-12);
        }
    }

    #[test]
    fn gradient_check_weights() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let xs = make_seq(&mut rng, 3, 2, 2);
        let target = Matrix::xavier(2, 3, &mut rng);
        let h = lstm.forward(&xs);
        let (_, d_h) = mse_loss(&h, &target);
        lstm.backward(&d_h);
        let analytic: Vec<Vec<f64>> = lstm
            .params_and_grads()
            .iter()
            .map(|(_, g)| g.to_vec())
            .collect();
        let eps = 1e-6;
        for p in 0..3 {
            let len = analytic[p].len();
            for i in (0..len).step_by(4) {
                {
                    let mut pg = lstm.params_and_grads();
                    pg[p].0[i] += eps;
                }
                let (l1, _) = mse_loss(&lstm.infer(&xs), &target);
                {
                    let mut pg = lstm.params_and_grads();
                    pg[p].0[i] -= 2.0 * eps;
                }
                let (l2, _) = mse_loss(&lstm.infer(&xs), &target);
                {
                    let mut pg = lstm.params_and_grads();
                    pg[p].0[i] += eps;
                }
                let num = (l1 - l2) / (2.0 * eps);
                let ana = analytic[p][i];
                assert!(
                    (ana - num).abs() < 1e-7 + 1e-4 * num.abs(),
                    "param {p} idx {i}: analytic {ana} vs numeric {num}"
                );
            }
        }
    }

    #[test]
    fn gradient_check_inputs() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let xs = make_seq(&mut rng, 3, 1, 2);
        let target = Matrix::xavier(1, 3, &mut rng);
        let h = lstm.forward(&xs);
        let (_, d_h) = mse_loss(&h, &target);
        let dxs = lstm.backward(&d_h);
        let eps = 1e-6;
        for t in 0..xs.len() {
            for i in 0..xs[t].data().len() {
                let mut xs_p = xs.clone();
                xs_p[t].data_mut()[i] += eps;
                let (l1, _) = mse_loss(&lstm.infer(&xs_p), &target);
                xs_p[t].data_mut()[i] -= 2.0 * eps;
                let (l2, _) = mse_loss(&lstm.infer(&xs_p), &target);
                let num = (l1 - l2) / (2.0 * eps);
                let ana = dxs[t].data()[i];
                assert!(
                    (ana - num).abs() < 1e-7 + 1e-4 * num.abs(),
                    "t={t} i={i}: {ana} vs {num}"
                );
            }
        }
    }

    #[test]
    fn can_learn_to_remember_first_input() {
        // Task: output the first element of the sequence (long-range memory).
        let mut rng = SmallRng::seed_from_u64(5);
        let mut lstm = Lstm::new(1, 8, &mut rng);
        let mut head = crate::dense::Dense::new(8, 1, crate::dense::Activation::Identity, &mut rng);
        let mut adam = crate::optim::Adam::new(0.01);
        let mut last_loss = f64::INFINITY;
        for epoch in 0..300 {
            use rand::Rng;
            let first: f64 = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            let mut xs = vec![Matrix::row_vector(&[first])];
            for _ in 0..4 {
                xs.push(Matrix::row_vector(&[rng.gen_range(-0.2..0.2)]));
            }
            let h = lstm.forward(&xs);
            let y = head.forward(&h);
            let target = Matrix::row_vector(&[first]);
            let (loss, d_y) = mse_loss(&y, &target);
            let d_h = head.backward(&d_y);
            lstm.backward(&d_h);
            let mut params = lstm.params_and_grads();
            params.extend(head.params_and_grads());
            adam.step_slices(&mut params);
            if epoch >= 290 {
                last_loss = loss;
            }
        }
        assert!(last_loss < 0.1, "final loss {last_loss}");
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut lstm = Lstm::new(1, 1, &mut rng);
        let _ = lstm.forward(&[]);
    }
}
