//! A single-layer LSTM with backpropagation through time.
//!
//! The intelligent client's input generator is an LSTM (the paper uses
//! Hochreiter–Schmidhuber LSTM via TensorFlow, §3.1). Gate layout in the
//! fused weight matrices is `[i | f | g | o]` (input, forget, candidate,
//! output).
//!
//! All four gate products are batched into single `[B × 4H]` GEMMs on the
//! shared blocked kernel, and every per-step tensor (inputs, gate
//! activations, cell states) lives in preallocated per-layer arenas reused
//! across calls — the seed's per-timestep `clone()`s are gone. The
//! elementwise pipeline keeps the seed's exact operation order, so results
//! are bit-identical to [`Lstm::infer_reference`] (the original kernel,
//! kept as the checked reference).

use rand::rngs::SmallRng;

use crate::scratch::Scratch;
use crate::tensor::{gemm_acc, Matrix};

fn sigmoid(v: f64) -> f64 {
    1.0 / (1.0 + (-v).exp())
}

/// The single per-step elementwise gate pipeline shared by `step`,
/// `forward` and `infer` — the seed's exact operation order: combine the
/// two pre-activation halves as `(zx + zh) + b`, apply the activations,
/// update `c`/`h` in place. `record` observes
/// `(e, i, f, g, o, c, tanh_c)` per element (forward uses it to fill the
/// BPTT arenas; the other paths pass a no-op).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn gate_step(
    b: &[f64],
    hd: usize,
    batch: usize,
    zx_t: &[f64],
    zh: &mut [f64],
    c_cur: &mut [f64],
    h_cur: &mut [f64],
    mut record: impl FnMut(usize, f64, f64, f64, f64, f64, f64),
) {
    for r in 0..batch {
        let zr = r * 4 * hd;
        for (col, &bv) in b.iter().enumerate() {
            zh[zr + col] = (zx_t[zr + col] + zh[zr + col]) + bv;
        }
    }
    for r in 0..batch {
        for j in 0..hd {
            let z = &zh[r * 4 * hd..];
            let i = sigmoid(z[j]);
            let f = sigmoid(z[hd + j]);
            let g = z[2 * hd + j].tanh();
            let o = sigmoid(z[3 * hd + j]);
            let e = r * hd + j;
            let c = f * c_cur[e] + i * g;
            let tc = c.tanh();
            record(e, i, f, g, o, c, tc);
            c_cur[e] = c;
            h_cur[e] = o * tc;
        }
    }
}

/// Recurrent state carried between steps during streaming inference.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    /// Hidden state `[batch, hidden]`.
    pub h: Matrix,
    /// Cell state `[batch, hidden]`.
    pub c: Matrix,
}

/// A single-layer LSTM.
///
/// ```
/// use pictor_ml::{Lstm, Matrix, Scratch};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let mut ws = Scratch::new();
/// let mut lstm = Lstm::new(3, 4, &mut rng);
/// let seq = vec![Matrix::zeros(2, 3), Matrix::zeros(2, 3)];
/// let h = lstm.forward(&seq, &mut ws);
/// assert_eq!((h.rows(), h.cols()), (2, 4));
/// ```
#[derive(Debug, Clone)]
pub struct Lstm {
    input_dim: usize,
    hidden_dim: usize,
    wx: Matrix, // [input, 4*hidden]
    wh: Matrix, // [hidden, 4*hidden]
    b: Matrix,  // [1, 4*hidden]
    // BPTT arenas filled by `forward`, indexed [t][batch][dim]; reused
    // across calls (no per-timestep allocation).
    steps: usize,
    batch: usize,
    a_x: Vec<f64>,
    a_hprev: Vec<f64>,
    a_cprev: Vec<f64>,
    a_i: Vec<f64>,
    a_f: Vec<f64>,
    a_g: Vec<f64>,
    a_o: Vec<f64>,
    a_c: Vec<f64>,
    /// tanh(c) per step, computed in forward and reused by backward.
    a_tc: Vec<f64>,
    /// Gate pre-activation gradients per step, staged so the input
    /// gradients can be produced by one batched GEMM.
    a_dz: Vec<f64>,
    dwx: Matrix,
    dwh: Matrix,
    db: Matrix,
}

impl Lstm {
    /// Creates an LSTM with Xavier-initialized weights and forget-gate bias
    /// of 1 (standard trick for gradient flow).
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut SmallRng) -> Self {
        let mut b = Matrix::zeros(1, 4 * hidden_dim);
        for j in hidden_dim..2 * hidden_dim {
            b.set(0, j, 1.0);
        }
        Lstm {
            input_dim,
            hidden_dim,
            wx: Matrix::xavier(input_dim, 4 * hidden_dim, rng),
            wh: Matrix::xavier(hidden_dim, 4 * hidden_dim, rng),
            b,
            steps: 0,
            batch: 0,
            a_x: Vec::new(),
            a_hprev: Vec::new(),
            a_cprev: Vec::new(),
            a_i: Vec::new(),
            a_f: Vec::new(),
            a_g: Vec::new(),
            a_o: Vec::new(),
            a_c: Vec::new(),
            a_tc: Vec::new(),
            a_dz: Vec::new(),
            dwx: Matrix::zeros(input_dim, 4 * hidden_dim),
            dwh: Matrix::zeros(hidden_dim, 4 * hidden_dim),
            db: Matrix::zeros(1, 4 * hidden_dim),
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// A fresh zero state for a batch.
    pub fn zero_state(&self, batch: usize) -> LstmState {
        LstmState {
            h: Matrix::zeros(batch, self.hidden_dim),
            c: Matrix::zeros(batch, self.hidden_dim),
        }
    }

    /// Multiply-accumulate count for one step at batch 1 (FLOP-cost model).
    pub fn macs_per_step(&self) -> u64 {
        ((self.input_dim + self.hidden_dim) * 4 * self.hidden_dim) as u64
    }

    /// One streaming step: updates `state` in place (no per-step
    /// allocations beyond warm-up of the scratch pool). All four gate
    /// products run as two `[B × 4H]` GEMMs on the shared kernel.
    pub fn step(&self, state: &mut LstmState, x: &Matrix, ws: &mut Scratch) {
        let batch = x.rows();
        let (i_n, hd) = (self.input_dim, self.hidden_dim);
        let mut zx = ws.take(batch * 4 * hd);
        let mut zh = ws.take(batch * 4 * hd);
        gemm_acc(batch, i_n, 4 * hd, x.data(), self.wx.data(), &mut zx);
        gemm_acc(batch, hd, 4 * hd, state.h.data(), self.wh.data(), &mut zh);
        let (h_out, c_out) = (state.h.data_mut(), state.c.data_mut());
        gate_step(
            self.b.data(),
            hd,
            batch,
            &zx,
            &mut zh,
            c_out,
            h_out,
            |_, _, _, _, _, _, _| {},
        );
        ws.put(zx);
        ws.put(zh);
    }

    /// Forward pass over a sequence (`xs[t]: [batch, input]`), filling the
    /// BPTT arenas. Returns the final hidden state `[batch, hidden]`.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence.
    pub fn forward(&mut self, xs: &[Matrix], ws: &mut Scratch) -> Matrix {
        assert!(!xs.is_empty(), "empty sequence");
        let batch = xs[0].rows();
        let (i_n, hd) = (self.input_dim, self.hidden_dim);
        let t_len = xs.len();
        self.steps = t_len;
        self.batch = batch;
        // Arenas are fully overwritten below; only reshape when the
        // sequence geometry changes (no per-call zero fill).
        let resize = |v: &mut Vec<f64>, len: usize| {
            if v.len() != len {
                v.clear();
                v.resize(len, 0.0);
            }
        };
        resize(&mut self.a_x, t_len * batch * i_n);
        resize(&mut self.a_hprev, t_len * batch * hd);
        resize(&mut self.a_cprev, t_len * batch * hd);
        resize(&mut self.a_i, t_len * batch * hd);
        resize(&mut self.a_f, t_len * batch * hd);
        resize(&mut self.a_g, t_len * batch * hd);
        resize(&mut self.a_o, t_len * batch * hd);
        resize(&mut self.a_c, t_len * batch * hd);
        resize(&mut self.a_tc, t_len * batch * hd);
        let mut h_cur = ws.take(batch * hd);
        let mut c_cur = ws.take(batch * hd);
        // All timestep input projections in one GEMM: the arena already
        // holds the sequence as a stacked [T·B, input] matrix.
        for (t, x) in xs.iter().enumerate() {
            self.a_x[t * batch * i_n..(t + 1) * batch * i_n].copy_from_slice(x.data());
        }
        let mut zx = ws.take(t_len * batch * 4 * hd);
        gemm_acc(
            t_len * batch,
            i_n,
            4 * hd,
            &self.a_x,
            self.wx.data(),
            &mut zx,
        );
        let mut z2 = ws.take(batch * 4 * hd);
        for t in 0..t_len {
            let bh = t * batch * hd;
            self.a_hprev[bh..bh + batch * hd].copy_from_slice(&h_cur);
            self.a_cprev[bh..bh + batch * hd].copy_from_slice(&c_cur);
            z2.iter_mut().for_each(|v| *v = 0.0);
            gemm_acc(batch, hd, 4 * hd, &h_cur, self.wh.data(), &mut z2);
            let zx_t = &zx[t * batch * 4 * hd..(t + 1) * batch * 4 * hd];
            let (a_i, a_f, a_g, a_o, a_c, a_tc) = (
                &mut self.a_i,
                &mut self.a_f,
                &mut self.a_g,
                &mut self.a_o,
                &mut self.a_c,
                &mut self.a_tc,
            );
            gate_step(
                self.b.data(),
                hd,
                batch,
                zx_t,
                &mut z2,
                &mut c_cur,
                &mut h_cur,
                |e, i, f, g, o, c, tc| {
                    a_i[bh + e] = i;
                    a_f[bh + e] = f;
                    a_g[bh + e] = g;
                    a_o[bh + e] = o;
                    a_c[bh + e] = c;
                    a_tc[bh + e] = tc;
                },
            );
        }
        ws.put(zx);
        ws.put(z2);
        ws.put(c_cur);
        Matrix::from_vec(batch, hd, h_cur)
    }

    /// Inference-only forward pass returning the final hidden state. Like
    /// [`Lstm::forward`], the per-timestep input projections are batched
    /// into a single GEMM.
    pub fn infer(&self, xs: &[Matrix], ws: &mut Scratch) -> Matrix {
        assert!(!xs.is_empty(), "empty sequence");
        let batch = xs[0].rows();
        let (i_n, hd) = (self.input_dim, self.hidden_dim);
        let t_len = xs.len();
        let mut stacked = ws.take(t_len * batch * i_n);
        for (t, x) in xs.iter().enumerate() {
            stacked[t * batch * i_n..(t + 1) * batch * i_n].copy_from_slice(x.data());
        }
        let mut zx = ws.take(t_len * batch * 4 * hd);
        gemm_acc(
            t_len * batch,
            i_n,
            4 * hd,
            &stacked,
            self.wx.data(),
            &mut zx,
        );
        ws.put(stacked);
        let mut h_cur = ws.take(batch * hd);
        let mut c_cur = ws.take(batch * hd);
        let mut z2 = ws.take(batch * 4 * hd);
        for t in 0..t_len {
            z2.iter_mut().for_each(|v| *v = 0.0);
            gemm_acc(batch, hd, 4 * hd, &h_cur, self.wh.data(), &mut z2);
            let zx_t = &zx[t * batch * 4 * hd..(t + 1) * batch * 4 * hd];
            gate_step(
                self.b.data(),
                hd,
                batch,
                zx_t,
                &mut z2,
                &mut c_cur,
                &mut h_cur,
                |_, _, _, _, _, _, _| {},
            );
        }
        ws.put(zx);
        ws.put(z2);
        ws.put(c_cur);
        Matrix::from_vec(batch, hd, h_cur)
    }

    /// BPTT from a gradient on the final hidden state. Accumulates weight
    /// gradients and returns per-step input gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Lstm::forward`].
    pub fn backward(&mut self, d_h_last: &Matrix, ws: &mut Scratch) -> Vec<Matrix> {
        assert!(self.steps > 0, "backward before forward");
        let (i_n, hd) = (self.input_dim, self.hidden_dim);
        let (t_len, batch) = (self.steps, self.batch);
        self.dwx.fill_zero();
        self.dwh.fill_zero();
        self.db.fill_zero();
        if self.a_dz.len() != t_len * batch * 4 * hd {
            self.a_dz.clear();
            self.a_dz.resize(t_len * batch * 4 * hd, 0.0);
        }
        let mut d_h = ws.take(batch * hd);
        d_h.copy_from_slice(d_h_last.data());
        let mut d_c = ws.take(batch * hd);
        let mut xt = ws.take_uninit(i_n * batch);
        let mut hpt = ws.take_uninit(hd * batch);
        let mut p_dwx = ws.take(i_n * 4 * hd);
        let mut p_dwh = ws.take(hd * 4 * hd);
        let mut s_db = ws.take(4 * hd);
        // Transposed weights, computed once per backward pass.
        let mut wxt = ws.take_matrix(4 * hd, i_n);
        self.wx.transpose_into(&mut wxt);
        let mut wht = ws.take_matrix(4 * hd, hd);
        self.wh.transpose_into(&mut wht);
        for t in (0..t_len).rev() {
            let bh = t * batch * hd;
            let dz = &mut self.a_dz[t * batch * 4 * hd..(t + 1) * batch * 4 * hd];
            for e in 0..batch * hd {
                let (i, f, g, o, c_prev) = (
                    self.a_i[bh + e],
                    self.a_f[bh + e],
                    self.a_g[bh + e],
                    self.a_o[bh + e],
                    self.a_cprev[bh + e],
                );
                // tanh(c) was computed by forward; reuse the cached value.
                let tanh_c = self.a_tc[bh + e];
                // dL/do and the carry into dL/dc (σ' = σ(1-σ), tanh' = 1-tanh²).
                let d_o = d_h[e] * tanh_c;
                d_c[e] += d_h[e] * o * (1.0 - tanh_c * tanh_c);
                let d_i = d_c[e] * g;
                let d_f = d_c[e] * c_prev;
                let d_g = d_c[e] * i;
                let (r, j) = (e / hd, e % hd);
                let zrow = r * 4 * hd;
                dz[zrow + j] = d_i * i * (1.0 - i);
                dz[zrow + hd + j] = d_f * f * (1.0 - f);
                dz[zrow + 2 * hd + j] = d_g * (1.0 - g * g);
                dz[zrow + 3 * hd + j] = d_o * o * (1.0 - o);
            }
            // dWx += xᵀ·dz, dWh += h_prevᵀ·dz, db += Σ_rows dz — each
            // product is computed into scratch first so the accumulation
            // grouping matches the seed exactly.
            let x_t = &self.a_x[t * batch * i_n..(t + 1) * batch * i_n];
            for r in 0..batch {
                for ii in 0..i_n {
                    xt[ii * batch + r] = x_t[r * i_n + ii];
                }
            }
            p_dwx.iter_mut().for_each(|v| *v = 0.0);
            gemm_acc(i_n, batch, 4 * hd, &xt, dz, &mut p_dwx);
            for (a, &p) in self.dwx.data_mut().iter_mut().zip(&p_dwx) {
                *a += p;
            }
            let hp = &self.a_hprev[bh..bh + batch * hd];
            for r in 0..batch {
                for jj in 0..hd {
                    hpt[jj * batch + r] = hp[r * hd + jj];
                }
            }
            p_dwh.iter_mut().for_each(|v| *v = 0.0);
            gemm_acc(hd, batch, 4 * hd, &hpt, dz, &mut p_dwh);
            for (a, &p) in self.dwh.data_mut().iter_mut().zip(&p_dwh) {
                *a += p;
            }
            s_db.iter_mut().for_each(|v| *v = 0.0);
            for r in 0..batch {
                for (col, s) in s_db.iter_mut().enumerate() {
                    *s += dz[r * 4 * hd + col];
                }
            }
            for (a, &p) in self.db.data_mut().iter_mut().zip(&s_db) {
                *a += p;
            }
            d_h.iter_mut().for_each(|v| *v = 0.0);
            gemm_acc(batch, 4 * hd, hd, dz, wht.data(), &mut d_h);
            for (dc, &f) in d_c.iter_mut().zip(&self.a_f[bh..bh + batch * hd]) {
                *dc *= f;
            }
        }
        // Every step's input gradient in one batched GEMM: each dxs row is
        // an independent dot product, so stacking the per-step dz blocks
        // changes nothing about per-element summation order.
        let mut dxs_flat = ws.take(t_len * batch * i_n);
        gemm_acc(
            t_len * batch,
            4 * hd,
            i_n,
            &self.a_dz,
            wxt.data(),
            &mut dxs_flat,
        );
        let mut dxs = Vec::with_capacity(t_len);
        for t in 0..t_len {
            dxs.push(Matrix::from_vec(
                batch,
                i_n,
                dxs_flat[t * batch * i_n..(t + 1) * batch * i_n].to_vec(),
            ));
        }
        ws.put(dxs_flat);
        ws.put_matrix(wxt);
        ws.put_matrix(wht);
        ws.put(d_h);
        ws.put(d_c);
        ws.put(xt);
        ws.put(hpt);
        ws.put(p_dwx);
        ws.put(p_dwh);
        ws.put(s_db);
        dxs
    }

    /// Parameter/gradient pairs for the optimizer.
    pub fn params_and_grads(&mut self) -> Vec<(&mut [f64], &[f64])> {
        vec![
            (self.wx.data_mut(), self.dwx.data()),
            (self.wh.data_mut(), self.dwh.data()),
            (self.b.data_mut(), self.db.data()),
        ]
    }

    /// The seed's per-step kernel (naive matmuls, fresh allocations every
    /// step), kept as the reference implementation for equivalence tests
    /// and perf baselines.
    pub fn infer_reference(&self, xs: &[Matrix]) -> Matrix {
        assert!(!xs.is_empty(), "empty sequence");
        let hd = self.hidden_dim;
        let mut state = self.zero_state(xs[0].rows());
        for x in xs {
            let z = x
                .matmul_reference(&self.wx)
                .add(&state.h.matmul_reference(&self.wh))
                .add_row_broadcast(&self.b);
            let batch = x.rows();
            let mut i = Matrix::zeros(batch, hd);
            let mut f = Matrix::zeros(batch, hd);
            let mut g = Matrix::zeros(batch, hd);
            let mut o = Matrix::zeros(batch, hd);
            for r in 0..batch {
                for j in 0..hd {
                    i.set(r, j, sigmoid(z.get(r, j)));
                    f.set(r, j, sigmoid(z.get(r, hd + j)));
                    g.set(r, j, z.get(r, 2 * hd + j).tanh());
                    o.set(r, j, sigmoid(z.get(r, 3 * hd + j)));
                }
            }
            let c = f.hadamard(&state.c).add(&i.hadamard(&g));
            let h = o.hadamard(&c.map(f64::tanh));
            state.c = c;
            state.h = h;
        }
        state.h
    }

    /// The seed's full training step (forward with per-step `clone()`
    /// caches + BPTT on naive matmuls), kept as the reference
    /// implementation for equivalence tests and perf baselines. Returns
    /// `(h_last, dxs, dwx, dwh, db)` without touching the layer's state.
    #[allow(clippy::type_complexity)]
    pub fn train_seq_reference(
        &self,
        xs: &[Matrix],
        d_h_last: &Matrix,
    ) -> (Matrix, Vec<Matrix>, Matrix, Matrix, Matrix) {
        assert!(!xs.is_empty(), "empty sequence");
        let hd = self.hidden_dim;
        let batch = xs[0].rows();
        struct StepCache {
            x: Matrix,
            h_prev: Matrix,
            c_prev: Matrix,
            i: Matrix,
            f: Matrix,
            g: Matrix,
            o: Matrix,
            c: Matrix,
        }
        // Forward, caching every step exactly like the seed did.
        let mut caches: Vec<StepCache> = Vec::new();
        let mut state = self.zero_state(batch);
        for x in xs {
            let h_prev = state.h.clone();
            let c_prev = state.c.clone();
            let z = x
                .matmul_reference(&self.wx)
                .add(&h_prev.matmul_reference(&self.wh))
                .add_row_broadcast(&self.b);
            let mut i = Matrix::zeros(batch, hd);
            let mut f = Matrix::zeros(batch, hd);
            let mut g = Matrix::zeros(batch, hd);
            let mut o = Matrix::zeros(batch, hd);
            for r in 0..batch {
                for j in 0..hd {
                    i.set(r, j, sigmoid(z.get(r, j)));
                    f.set(r, j, sigmoid(z.get(r, hd + j)));
                    g.set(r, j, z.get(r, 2 * hd + j).tanh());
                    o.set(r, j, sigmoid(z.get(r, 3 * hd + j)));
                }
            }
            let c = f.hadamard(&c_prev).add(&i.hadamard(&g));
            let h = o.hadamard(&c.map(f64::tanh));
            caches.push(StepCache {
                x: x.clone(),
                h_prev,
                c_prev,
                i,
                f,
                g,
                o,
                c: c.clone(),
            });
            state.c = c;
            state.h = h;
        }
        // Backward (the seed's BPTT loop verbatim).
        let mut dwx = Matrix::zeros(self.input_dim, 4 * hd);
        let mut dwh = Matrix::zeros(hd, 4 * hd);
        let mut db = Matrix::zeros(1, 4 * hd);
        let mut d_h = d_h_last.clone();
        let mut d_c = Matrix::zeros(batch, hd);
        let mut dxs = vec![Matrix::zeros(batch, self.input_dim); caches.len()];
        for t in (0..caches.len()).rev() {
            let cache = &caches[t];
            let tanh_c = cache.c.map(f64::tanh);
            let d_o = d_h.hadamard(&tanh_c);
            let one_minus_tc2 = tanh_c.map(|v| 1.0 - v * v);
            d_c = d_c.add(&d_h.hadamard(&cache.o).hadamard(&one_minus_tc2));
            let d_i = d_c.hadamard(&cache.g);
            let d_f = d_c.hadamard(&cache.c_prev);
            let d_g = d_c.hadamard(&cache.i);
            let mut dz = Matrix::zeros(batch, 4 * hd);
            for r in 0..batch {
                for j in 0..hd {
                    let iv = cache.i.get(r, j);
                    let fv = cache.f.get(r, j);
                    let gv = cache.g.get(r, j);
                    let ov = cache.o.get(r, j);
                    dz.set(r, j, d_i.get(r, j) * iv * (1.0 - iv));
                    dz.set(r, hd + j, d_f.get(r, j) * fv * (1.0 - fv));
                    dz.set(r, 2 * hd + j, d_g.get(r, j) * (1.0 - gv * gv));
                    dz.set(r, 3 * hd + j, d_o.get(r, j) * ov * (1.0 - ov));
                }
            }
            dwx = dwx.add(&cache.x.transpose().matmul_reference(&dz));
            dwh = dwh.add(&cache.h_prev.transpose().matmul_reference(&dz));
            db = db.add(&dz.sum_rows());
            dxs[t] = dz.matmul_reference(&self.wx.transpose());
            d_h = dz.matmul_reference(&self.wh.transpose());
            d_c = d_c.hadamard(&cache.f);
        }
        (state.h, dxs, dwx, dwh, db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse_loss;
    use rand::SeedableRng;

    fn make_seq(rng: &mut SmallRng, t: usize, batch: usize, dim: usize) -> Vec<Matrix> {
        (0..t).map(|_| Matrix::xavier(batch, dim, rng)).collect()
    }

    #[test]
    fn forward_shapes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ws = Scratch::new();
        let mut lstm = Lstm::new(3, 5, &mut rng);
        let xs = make_seq(&mut rng, 4, 2, 3);
        let h = lstm.forward(&xs, &mut ws);
        assert_eq!((h.rows(), h.cols()), (2, 5));
        assert_eq!(lstm.infer(&xs, &mut ws), h);
    }

    #[test]
    fn matches_reference_bitwise() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut ws = Scratch::new();
        let lstm = Lstm::new(3, 4, &mut rng);
        let xs = make_seq(&mut rng, 7, 2, 3);
        assert_eq!(
            lstm.infer(&xs, &mut ws),
            lstm.infer_reference(&xs),
            "batched-gate kernel must be bit-exact vs the seed kernel"
        );
    }

    #[test]
    fn train_step_matches_reference_bitwise() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut ws = Scratch::new();
        let mut lstm = Lstm::new(3, 4, &mut rng);
        let xs = make_seq(&mut rng, 5, 2, 3);
        let d_h = Matrix::xavier(2, 4, &mut rng);
        let h = lstm.forward(&xs, &mut ws);
        let dxs = lstm.backward(&d_h, &mut ws);
        let (h_ref, dxs_ref, dwx_ref, dwh_ref, db_ref) = lstm.train_seq_reference(&xs, &d_h);
        assert_eq!(h, h_ref, "forward must be bit-exact");
        assert_eq!(dxs, dxs_ref, "input grads must be bit-exact");
        assert_eq!(lstm.dwx, dwx_ref, "dwx must be bit-exact");
        assert_eq!(lstm.dwh, dwh_ref, "dwh must be bit-exact");
        assert_eq!(lstm.db, db_ref, "db must be bit-exact");
    }

    #[test]
    fn step_matches_forward() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ws = Scratch::new();
        let mut lstm = Lstm::new(3, 4, &mut rng);
        let xs = make_seq(&mut rng, 5, 1, 3);
        let h_forward = lstm.forward(&xs, &mut ws);
        let mut state = lstm.zero_state(1);
        for x in &xs {
            lstm.step(&mut state, x, &mut ws);
        }
        for i in 0..4 {
            assert!((h_forward.get(0, i) - state.h.get(0, i)).abs() < 1e-12);
        }
    }

    #[test]
    fn gradient_check_weights() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut ws = Scratch::new();
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let xs = make_seq(&mut rng, 3, 2, 2);
        let target = Matrix::xavier(2, 3, &mut rng);
        let h = lstm.forward(&xs, &mut ws);
        let (_, d_h) = mse_loss(&h, &target);
        lstm.backward(&d_h, &mut ws);
        let analytic: Vec<Vec<f64>> = lstm
            .params_and_grads()
            .iter()
            .map(|(_, g)| g.to_vec())
            .collect();
        let eps = 1e-6;
        for p in 0..3 {
            let len = analytic[p].len();
            for i in (0..len).step_by(4) {
                {
                    let mut pg = lstm.params_and_grads();
                    pg[p].0[i] += eps;
                }
                let (l1, _) = mse_loss(&lstm.infer(&xs, &mut ws), &target);
                {
                    let mut pg = lstm.params_and_grads();
                    pg[p].0[i] -= 2.0 * eps;
                }
                let (l2, _) = mse_loss(&lstm.infer(&xs, &mut ws), &target);
                {
                    let mut pg = lstm.params_and_grads();
                    pg[p].0[i] += eps;
                }
                let num = (l1 - l2) / (2.0 * eps);
                let ana = analytic[p][i];
                assert!(
                    (ana - num).abs() < 1e-7 + 1e-4 * num.abs(),
                    "param {p} idx {i}: analytic {ana} vs numeric {num}"
                );
            }
        }
    }

    #[test]
    fn gradient_check_inputs() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut ws = Scratch::new();
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let xs = make_seq(&mut rng, 3, 1, 2);
        let target = Matrix::xavier(1, 3, &mut rng);
        let h = lstm.forward(&xs, &mut ws);
        let (_, d_h) = mse_loss(&h, &target);
        let dxs = lstm.backward(&d_h, &mut ws);
        let eps = 1e-6;
        for t in 0..xs.len() {
            for i in 0..xs[t].data().len() {
                let mut xs_p = xs.clone();
                xs_p[t].data_mut()[i] += eps;
                let (l1, _) = mse_loss(&lstm.infer(&xs_p, &mut ws), &target);
                xs_p[t].data_mut()[i] -= 2.0 * eps;
                let (l2, _) = mse_loss(&lstm.infer(&xs_p, &mut ws), &target);
                let num = (l1 - l2) / (2.0 * eps);
                let ana = dxs[t].data()[i];
                assert!(
                    (ana - num).abs() < 1e-7 + 1e-4 * num.abs(),
                    "t={t} i={i}: {ana} vs {num}"
                );
            }
        }
    }

    #[test]
    fn can_learn_to_remember_first_input() {
        // Task: output the first element of the sequence (long-range memory).
        let mut rng = SmallRng::seed_from_u64(5);
        let mut ws = Scratch::new();
        let mut lstm = Lstm::new(1, 8, &mut rng);
        let mut head = crate::dense::Dense::new(8, 1, crate::dense::Activation::Identity, &mut rng);
        let mut adam = crate::optim::Adam::new(0.01);
        let mut last_loss = f64::INFINITY;
        for epoch in 0..300 {
            use rand::Rng;
            let first: f64 = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            let mut xs = vec![Matrix::row_vector(&[first])];
            for _ in 0..4 {
                xs.push(Matrix::row_vector(&[rng.gen_range(-0.2..0.2)]));
            }
            let h = lstm.forward(&xs, &mut ws);
            let y = head.forward(&h);
            let target = Matrix::row_vector(&[first]);
            let (loss, d_y) = mse_loss(&y, &target);
            let d_h = head.backward(&d_y, &mut ws);
            lstm.backward(&d_h, &mut ws);
            let mut params = lstm.params_and_grads();
            params.extend(head.params_and_grads());
            adam.step_slices(&mut params);
            if epoch >= 290 {
                last_loss = loss;
            }
        }
        assert!(last_loss < 0.1, "final loss {last_loss}");
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ws = Scratch::new();
        let mut lstm = Lstm::new(1, 1, &mut rng);
        let _ = lstm.forward(&[], &mut ws);
    }
}
