//! Dense row-major matrices.

use rand::rngs::SmallRng;
use rand::Rng;

/// A dense `rows × cols` matrix of `f64` in row-major order.
///
/// ```
/// use pictor_ml::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "empty matrix");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix that owns `data` with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// A single-row matrix from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Xavier/Glorot-uniform initialization for a `rows × cols` weight.
    pub fn xavier(rows: usize, cols: usize, rng: &mut SmallRng) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of the backing storage (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing storage (row-major).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let lhs_row = k * rhs.cols;
                let out_row = i * rhs.cols;
                for j in 0..rhs.cols {
                    out.data[out_row + j] += a * rhs.data[lhs_row + j];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Adds a row vector to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × cols`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[r * self.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&v| f(v)).collect(),
        )
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scales every element.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// Sums each column into a `1 × cols` row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_bad_shapes_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn add_and_hadamard() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, 8.0]]));
    }

    #[test]
    fn bias_broadcast() {
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        let b = Matrix::row_vector(&[10.0, 20.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y, Matrix::from_rows(&[&[11.0, 21.0], &[12.0, 22.0]]));
    }

    #[test]
    fn sum_rows_sums_columns() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(x.sum_rows(), Matrix::row_vector(&[4.0, 6.0]));
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let w = Matrix::xavier(20, 30, &mut rng);
        let bound = (6.0 / 50.0_f64).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= bound));
        assert!(w.norm() > 0.0);
    }

    #[test]
    fn map_and_scale() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(a.map(f64::abs), Matrix::from_rows(&[&[1.0, 2.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, -4.0]]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let _ = Matrix::zeros(1, 1).get(0, 1);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panics() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }
}
