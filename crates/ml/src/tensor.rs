//! Dense row-major matrices and the shared GEMM kernel.
//!
//! Every layer in this crate (dense, conv-via-im2col, LSTM gates) lowers its
//! hot path onto one cache-blocked kernel, [`gemm_acc`]. The kernel
//! accumulates each output element strictly in increasing-`k` order, which
//! makes it **bit-identical** to the naive triple loop it replaced
//! ([`Matrix::matmul_reference`]) — golden figures and trained-model
//! trajectories do not shift.

use rand::rngs::SmallRng;
use rand::Rng;

/// Wide register tile: enough independent accumulator lanes (8 × 4-wide
/// vectors) to hide FP-add latency without reassociating any sum.
const NR: usize = 32;
/// Narrow register tile for mid-size column remainders.
const NR2: usize = 8;
/// K-panel height: rows of `b` streamed per pass, sized so the panel plus
/// the output tile stays cache-resident for large inner dimensions.
const KC: usize = 512;

/// Accumulates one `TILE`-wide register tile of row `i` over `a_panel`,
/// starting from the values already in `c_tile`. Terms are added in
/// strictly increasing `k` order per output element.
#[inline(always)]
fn tile_acc<const TILE: usize>(
    a_panel: &[f64],
    b: &[f64],
    n: usize,
    bj: usize,
    c_tile: &mut [f64],
) {
    let mut acc = [0.0f64; TILE];
    acc.copy_from_slice(&c_tile[..TILE]);
    let mut b_off = bj;
    for &aik in a_panel {
        let b_tile = &b[b_off..b_off + TILE];
        for (t, &bv) in b_tile.iter().enumerate() {
            acc[t] += aik * bv;
        }
        b_off += n;
    }
    c_tile[..TILE].copy_from_slice(&acc);
}

/// Like [`tile_acc`] but for two consecutive rows of `a`/`c` at once:
/// doubles the independent accumulator chains (hiding FP-add latency on
/// narrow tiles) and shares each `b` load between the rows. Per-element
/// summation order is unchanged.
#[inline(always)]
fn tile_acc2<const TILE: usize>(
    a0: &[f64],
    a1: &[f64],
    b: &[f64],
    n: usize,
    bj: usize,
    c0: &mut [f64],
    c1: &mut [f64],
) {
    let mut acc0 = [0.0f64; TILE];
    let mut acc1 = [0.0f64; TILE];
    acc0.copy_from_slice(&c0[..TILE]);
    acc1.copy_from_slice(&c1[..TILE]);
    let mut b_off = bj;
    for (&a0k, &a1k) in a0.iter().zip(a1) {
        let b_tile = &b[b_off..b_off + TILE];
        for (t, &bv) in b_tile.iter().enumerate() {
            acc0[t] += a0k * bv;
            acc1[t] += a1k * bv;
        }
        b_off += n;
    }
    c0[..TILE].copy_from_slice(&acc0);
    c1[..TILE].copy_from_slice(&acc1);
}

/// The shared cache-blocked GEMM kernel: `c += a · b` over row-major slices
/// (`a: m×k`, `b: k×n`, `c: m×n`).
///
/// For every output element the `k` terms are added in strictly increasing
/// order — blocking and register tiling only reorder *which* elements are
/// in flight, never the per-element summation order — so for finite inputs
/// the result is bit-identical to [`Matrix::matmul_reference`]. (The
/// reference skips zero `a` entries; adding the skipped `±0.0` products
/// cannot change a finite IEEE-754 sum, and the scalar tail keeps the skip
/// as a sparse fast path.)
///
/// # Panics
///
/// Panics if a slice length disagrees with its shape.
pub fn gemm_acc(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "gemm lhs shape mismatch");
    assert_eq!(b.len(), k * n, "gemm rhs shape mismatch");
    assert_eq!(c.len(), m * n, "gemm out shape mismatch");
    let mut k0 = 0;
    while k0 < k {
        let kc = KC.min(k - k0);
        let b_panel = &b[k0 * n..];
        // Column tiles outermost so one `kc × TILE` panel of `b` stays
        // L1-resident while every row of `a` streams past it.
        let mut j = 0;
        while j + NR <= n {
            for i in 0..m {
                let a_panel = &a[i * k + k0..i * k + k0 + kc];
                tile_acc::<NR>(a_panel, b_panel, n, j, &mut c[i * n + j..i * n + j + NR]);
            }
            j += NR;
        }
        // Narrowing tile cascade (8 → 4 → 2) keeps the b loads contiguous
        // for all but at most one remainder column. Narrow tiles pair rows
        // (`tile_acc2`) so enough accumulator chains stay in flight.
        macro_rules! narrow_tile_pass {
            ($tile:expr) => {
                while j + $tile <= n {
                    let mut i = 0;
                    while i + 2 <= m {
                        let (rows0, rows1) = c.split_at_mut((i + 1) * n);
                        tile_acc2::<$tile>(
                            &a[i * k + k0..i * k + k0 + kc],
                            &a[(i + 1) * k + k0..(i + 1) * k + k0 + kc],
                            b_panel,
                            n,
                            j,
                            &mut rows0[i * n + j..i * n + j + $tile],
                            &mut rows1[j..j + $tile],
                        );
                        i += 2;
                    }
                    if i < m {
                        let a_panel = &a[i * k + k0..i * k + k0 + kc];
                        tile_acc::<$tile>(
                            a_panel,
                            b_panel,
                            n,
                            j,
                            &mut c[i * n + j..i * n + j + $tile],
                        );
                    }
                    j += $tile;
                }
            };
        }
        narrow_tile_pass!(NR2);
        narrow_tile_pass!(4);
        narrow_tile_pass!(2);
        // Scalar tail (at most one column); keeps the reference's
        // zero-skip as a sparse fast path (bit-neutral, see above).
        for jj in j..n {
            for i in 0..m {
                let a_panel = &a[i * k + k0..i * k + k0 + kc];
                let mut acc = c[i * n + jj];
                for (kk, &aik) in a_panel.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    acc += aik * b_panel[kk * n + jj];
                }
                c[i * n + jj] = acc;
            }
        }
        k0 += kc;
    }
}

/// A dense `rows × cols` matrix of `f64` in row-major order.
///
/// ```
/// use pictor_ml::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "empty matrix");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix that owns `data` with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// A single-row matrix from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Xavier/Glorot-uniform initialization for a `rows × cols` weight.
    pub fn xavier(rows: usize, cols: usize, rng: &mut SmallRng) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of the backing storage (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing storage (row-major).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs` via the blocked [`gemm_acc`] kernel.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Writes `self · rhs` into caller-owned `out` (overwriting it) without
    /// allocating — the hot-loop entry point onto [`gemm_acc`].
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or if `out` has the wrong shape.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, rhs.cols),
            "matmul out shape mismatch"
        );
        out.data.iter_mut().for_each(|v| *v = 0.0);
        gemm_acc(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
    }

    /// Accumulates `self · rhs` into `out` (`out += self · rhs`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matmul_acc(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, rhs.cols),
            "matmul out shape mismatch"
        );
        gemm_acc(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
    }

    /// The seed repository's naive triple-loop product, kept as the
    /// reference implementation for kernel-equivalence tests and perf
    /// baselines (`perf_report`, `BENCH_03.json`).
    pub fn matmul_reference(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let lhs_row = k * rhs.cols;
                let out_row = i * rhs.cols;
                for j in 0..rhs.cols {
                    out.data[out_row + j] += a * rhs.data[lhs_row + j];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Writes the transpose into caller-owned `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `cols × rows`.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(
            (out.rows, out.cols),
            (self.cols, self.rows),
            "transpose out shape mismatch"
        );
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Adds a row vector to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × cols`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[r * self.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Element-wise sum in place (`self += rhs`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_in_place(&mut self, rhs: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Adds a row vector to every row in place (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × cols`.
    pub fn add_row_broadcast_in_place(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        for row in self.data.chunks_exact_mut(self.cols) {
            for (v, b) in row.iter_mut().zip(&bias.data) {
                *v += b;
            }
        }
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&v| f(v)).collect(),
        )
    }

    /// Element-wise map in place.
    pub fn map_in_place(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Sets every element to zero (scratch-matrix reset).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Consumes the matrix, returning its backing storage (for returning
    /// buffers to a [`crate::Scratch`] pool).
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scales every element.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// Sums each column into a `1 × cols` row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_bad_shapes_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn add_and_hadamard() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, 8.0]]));
    }

    #[test]
    fn bias_broadcast() {
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        let b = Matrix::row_vector(&[10.0, 20.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y, Matrix::from_rows(&[&[11.0, 21.0], &[12.0, 22.0]]));
    }

    #[test]
    fn sum_rows_sums_columns() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(x.sum_rows(), Matrix::row_vector(&[4.0, 6.0]));
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let w = Matrix::xavier(20, 30, &mut rng);
        let bound = (6.0 / 50.0_f64).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= bound));
        assert!(w.norm() > 0.0);
    }

    #[test]
    fn map_and_scale() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(a.map(f64::abs), Matrix::from_rows(&[&[1.0, 2.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, -4.0]]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let _ = Matrix::zeros(1, 1).get(0, 1);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panics() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }
}
