//! Optimizers.

/// Adam (Kingma & Ba) with per-slot first/second moment state.
///
/// The optimizer is keyed by the order in which parameter slices are
/// presented; callers must present the same layout every step.
///
/// ```
/// use pictor_ml::Adam;
/// let mut adam = Adam::new(0.1);
/// let mut w = vec![1.0_f64];
/// for _ in 0..200 {
///     let grad = vec![2.0 * w[0]]; // d/dw of w², minimized at 0
///     adam.step(&mut [(&mut w, &grad)]);
/// }
/// assert!(w[0].abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Creates Adam with learning rate `lr` and standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "bad learning rate: {lr}");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Current step count.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update. Each element of `params` pairs a mutable
    /// parameter slice with its gradient slice of equal length.
    ///
    /// # Panics
    ///
    /// Panics if a gradient length differs from its parameter length or the
    /// slot layout changes between steps.
    pub fn step(&mut self, params: &mut [(&mut Vec<f64>, &[f64])]) {
        self.t += 1;
        if self.m.is_empty() {
            for (p, _) in params.iter() {
                self.m.push(vec![0.0; p.len()]);
                self.v.push(vec![0.0; p.len()]);
            }
        }
        assert_eq!(self.m.len(), params.len(), "slot layout changed");
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (slot, (p, g)) in params.iter_mut().enumerate() {
            assert_eq!(p.len(), g.len(), "grad length mismatch in slot {slot}");
            assert_eq!(p.len(), self.m[slot].len(), "slot {slot} size changed");
            for i in 0..p.len() {
                let m = &mut self.m[slot][i];
                let v = &mut self.v[slot][i];
                *m = self.beta1 * *m + (1.0 - self.beta1) * g[i];
                *v = self.beta2 * *v + (1.0 - self.beta2) * g[i] * g[i];
                let m_hat = *m / bc1;
                let v_hat = *v / bc2;
                p[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    /// Convenience wrapper when parameters come as `&mut [f64]` slices
    /// (layer internals) rather than owned vectors.
    pub fn step_slices(&mut self, params: &mut [(&mut [f64], &[f64])]) {
        self.t += 1;
        if self.m.is_empty() {
            for (p, _) in params.iter() {
                self.m.push(vec![0.0; p.len()]);
                self.v.push(vec![0.0; p.len()]);
            }
        }
        assert_eq!(self.m.len(), params.len(), "slot layout changed");
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (slot, (p, g)) in params.iter_mut().enumerate() {
            assert_eq!(p.len(), g.len(), "grad length mismatch in slot {slot}");
            for i in 0..p.len() {
                let m = &mut self.m[slot][i];
                let v = &mut self.v[slot][i];
                *m = self.beta1 * *m + (1.0 - self.beta1) * g[i];
                *v = self.beta2 * *v + (1.0 - self.beta2) * g[i] * g[i];
                let m_hat = *m / bc1;
                let v_hat = *v / bc2;
                p[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let mut adam = Adam::new(0.05);
        let mut w = vec![3.0, -4.0];
        for _ in 0..500 {
            let g: Vec<f64> = w.iter().map(|x| 2.0 * x).collect();
            adam.step(&mut [(&mut w, &g)]);
        }
        assert!(w.iter().all(|x| x.abs() < 0.05), "w={w:?}");
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn handles_multiple_slots() {
        let mut adam = Adam::new(0.05);
        let mut a = vec![2.0];
        let mut b = vec![-2.0, 1.0];
        for _ in 0..400 {
            let ga = vec![2.0 * a[0]];
            let gb: Vec<f64> = b.iter().map(|x| 2.0 * x).collect();
            adam.step(&mut [(&mut a, &ga), (&mut b, &gb)]);
        }
        assert!(a[0].abs() < 0.05 && b.iter().all(|x| x.abs() < 0.05));
    }

    #[test]
    fn step_slices_matches_step() {
        let mut adam1 = Adam::new(0.01);
        let mut adam2 = Adam::new(0.01);
        let mut w1 = vec![1.0, 2.0];
        let mut w2 = vec![1.0, 2.0];
        for _ in 0..50 {
            let g1: Vec<f64> = w1.iter().map(|x: &f64| x.cos()).collect();
            let g2: Vec<f64> = w2.iter().map(|x: &f64| x.cos()).collect();
            adam1.step(&mut [(&mut w1, &g1)]);
            adam2.step_slices(&mut [(&mut w2[..], &g2)]);
        }
        for (a, b) in w1.iter().zip(&w2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "grad length mismatch")]
    fn mismatched_grad_panics() {
        let mut adam = Adam::new(0.1);
        let mut w = vec![1.0, 2.0];
        let g = vec![0.1];
        adam.step(&mut [(&mut w, &g)]);
    }

    #[test]
    #[should_panic(expected = "bad learning rate")]
    fn zero_lr_panics() {
        let _ = Adam::new(0.0);
    }
}
