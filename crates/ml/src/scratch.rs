//! Reusable scratch workspace for allocation-free hot loops.
//!
//! Every kernel call that needs temporary storage (im2col panels, LSTM gate
//! pre-activations, transposed weight views, …) takes a `&mut Scratch` and
//! borrows buffers from its pool instead of allocating. Buffers are handed
//! out by ownership (`take`) and returned (`put`), which sidesteps borrow
//! conflicts when a caller needs several live buffers at once; after a few
//! warm-up iterations the pool reaches a fixed point and the hot loop runs
//! allocation-free.

use crate::tensor::Matrix;

/// A pool of reusable `f64` buffers.
///
/// ```
/// use pictor_ml::Scratch;
/// let mut ws = Scratch::new();
/// let buf = ws.take(16); // zero-filled
/// assert!(buf.iter().all(|&v| v == 0.0));
/// ws.put(buf);
/// assert_eq!(ws.pooled(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    free: Vec<Vec<f64>>,
}

impl Scratch {
    /// An empty workspace.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Pops the pooled buffer whose capacity best fits `len`: the smallest
    /// buffer that already holds `len` elements, else the largest
    /// available (so a large request grows one buffer instead of
    /// repeatedly reallocating — buffer sizes in a workload mix, and a
    /// size-oblivious pop would realloc almost every call).
    fn pop_fit(&mut self, len: usize) -> Vec<f64> {
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, b) in self.free.iter().enumerate() {
            let cap = b.capacity();
            let better = match best {
                None => true,
                Some((_, bc)) => {
                    if bc >= len {
                        cap >= len && cap < bc
                    } else {
                        cap > bc
                    }
                }
            };
            if better {
                best = Some((i, cap));
            }
        }
        match best {
            Some((i, _)) => self.free.swap_remove(i),
            None => Vec::new(),
        }
    }

    /// Borrows a zero-filled buffer of exactly `len` elements from the pool
    /// (allocating only if the pool is empty). Return it with
    /// [`Scratch::put`] when done.
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        let mut buf = self.pop_fit(len);
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Borrows a buffer of exactly `len` elements with **unspecified
    /// contents** (recycled values from earlier uses). Cheaper than
    /// [`Scratch::take`] for destinations that are fully overwritten
    /// before being read — never read an element you have not written.
    pub fn take_uninit(&mut self, len: usize) -> Vec<f64> {
        let mut buf = self.pop_fit(len);
        if buf.len() >= len {
            buf.truncate(len);
        } else {
            buf.resize(len, 0.0);
        }
        buf
    }

    /// Borrows a zero-filled `rows × cols` matrix backed by pool storage.
    /// Return it with [`Scratch::put_matrix`].
    pub fn take_matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.take(rows * cols))
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&mut self, buf: Vec<f64>) {
        self.free.push(buf);
    }

    /// Returns a matrix's backing storage to the pool for reuse.
    pub fn put_matrix(&mut self, m: Matrix) {
        self.free.push(m.into_vec());
    }

    /// Number of buffers currently pooled (diagnostics).
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_returned_buffers() {
        let mut ws = Scratch::new();
        let mut buf = ws.take(8);
        buf[3] = 7.0;
        let ptr = buf.as_ptr();
        ws.put(buf);
        let buf2 = ws.take(8);
        assert_eq!(buf2.as_ptr(), ptr, "pool must reuse storage");
        assert!(buf2.iter().all(|&v| v == 0.0), "reused buffer is zeroed");
        ws.put(buf2);
    }

    #[test]
    fn take_matrix_round_trip() {
        let mut ws = Scratch::new();
        let m = ws.take_matrix(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        ws.put_matrix(m);
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn resizes_on_demand() {
        let mut ws = Scratch::new();
        ws.put(vec![1.0; 4]);
        let buf = ws.take(16);
        assert_eq!(buf.len(), 16);
        assert!(buf.iter().all(|&v| v == 0.0));
    }
}
