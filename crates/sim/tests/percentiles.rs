//! Pins the streaming P² percentile estimator against exact sorted-slice
//! percentiles on adversarial input distributions.
//!
//! The fleet report trusts [`TailQuantiles`] for its p50/p95/p99 tail
//! metrics, so the estimator's error must stay bounded on the shapes that
//! break naive quantile sketches: constant streams (degenerate markers),
//! bimodal mixtures (a density gap exactly where the median marker sits),
//! and heavy tails (p99 dominated by rare huge samples).

use pictor_sim::rng::{exponential, lognormal_mean_cv};
use pictor_sim::{Distribution, P2Quantile, SeedTree, TailQuantiles};
use rand::Rng;

/// Exact linear-interpolated percentile of a sample set.
fn exact(samples: &[f64], p: f64) -> f64 {
    let d: Distribution = samples.iter().copied().collect();
    d.percentile(p)
}

/// Asserts the streaming estimate is within `rel` of the exact percentile
/// (with a small absolute floor so near-zero percentiles don't blow up the
/// relative error).
fn assert_close(label: &str, streamed: f64, exact: f64, rel: f64) {
    let tol = rel * exact.abs().max(1e-9) + 1e-9;
    assert!(
        (streamed - exact).abs() <= tol,
        "{label}: streamed {streamed} vs exact {exact} (tol {tol})"
    );
}

#[test]
fn constant_stream_is_exact() {
    let mut t = TailQuantiles::new();
    let samples = vec![42.5; 10_000];
    t.extend(samples.iter().copied());
    // Every marker collapses onto the constant: exact equality, not
    // tolerance.
    assert_eq!(t.p50(), 42.5);
    assert_eq!(t.p95(), 42.5);
    assert_eq!(t.p99(), 42.5);
    assert_eq!(t.min(), 42.5);
    assert_eq!(t.max(), 42.5);
}

#[test]
fn bimodal_mixture_matches_exact_percentiles() {
    // Two well-separated normal-ish lobes: 70% around 10, 30% around 100.
    // The p50 marker sits inside the left lobe, p95/p99 inside the right —
    // the density gap between them is where interpolating sketches smear.
    let mut rng = SeedTree::new(2026).stream("bimodal");
    let samples: Vec<f64> = (0..50_000)
        .map(|_| {
            if rng.gen::<f64>() < 0.7 {
                lognormal_mean_cv(&mut rng, 10.0, 0.1)
            } else {
                lognormal_mean_cv(&mut rng, 100.0, 0.05)
            }
        })
        .collect();
    let mut t = TailQuantiles::new();
    t.extend(samples.iter().copied());
    assert_close("bimodal p50", t.p50(), exact(&samples, 50.0), 0.05);
    assert_close("bimodal p95", t.p95(), exact(&samples, 95.0), 0.05);
    assert_close("bimodal p99", t.p99(), exact(&samples, 99.0), 0.05);
}

#[test]
fn heavy_tail_matches_exact_percentiles() {
    // Lognormal with cv=2: the p99 is ~8x the median and the max is far
    // beyond it, so tail markers must ride rare huge samples without
    // getting dragged by the bulk.
    let mut rng = SeedTree::new(7).stream("heavy");
    let samples: Vec<f64> = (0..50_000)
        .map(|_| lognormal_mean_cv(&mut rng, 50.0, 2.0))
        .collect();
    let mut t = TailQuantiles::new();
    t.extend(samples.iter().copied());
    assert_close("heavy p50", t.p50(), exact(&samples, 50.0), 0.05);
    assert_close("heavy p95", t.p95(), exact(&samples, 95.0), 0.10);
    assert_close("heavy p99", t.p99(), exact(&samples, 99.0), 0.15);
}

#[test]
fn exponential_interarrivals_match_exact_percentiles() {
    // The arrival process's own distribution: memoryless with mode at zero,
    // so the p50 marker lives where density is steepest.
    let mut rng = SeedTree::new(11).stream("exp");
    let samples: Vec<f64> = (0..50_000).map(|_| exponential(&mut rng, 3.0)).collect();
    let mut q50 = P2Quantile::new(0.5);
    let mut q99 = P2Quantile::new(0.99);
    for &x in &samples {
        q50.record(x);
        q99.record(x);
    }
    assert_close("exp p50", q50.value(), exact(&samples, 50.0), 0.05);
    assert_close("exp p99", q99.value(), exact(&samples, 99.0), 0.10);
}

#[test]
fn p99_is_continuous_across_the_exact_to_p2_transition() {
    // Regression: value() used to return the raw middle marker once n > 5,
    // so p99 over [1..=5] (exact: 4.96) collapsed to 3.0 the moment the
    // sixth sample arrived. The marker-curve interpolation keeps the
    // estimate pinned to the exact percentile across the handover.
    let mut q = P2Quantile::new(0.99);
    for x in 1..=5 {
        q.record(x as f64);
    }
    let at5 = q.value();
    assert_close(
        "p99 at n=5",
        at5,
        exact(&[1.0, 2.0, 3.0, 4.0, 5.0], 99.0),
        1e-12,
    );
    q.record(6.0);
    let at6 = q.value();
    assert_close(
        "p99 at n=6",
        at6,
        exact(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 99.0),
        1e-9,
    );
    // A growing stream must not make the tail estimate fall off a cliff.
    assert!(
        at6 > at5,
        "p99 dropped across the transition: {at5} -> {at6}"
    );
}

#[test]
fn p99_transition_survives_duplicate_value_feeds() {
    // All-duplicate prefix: every marker starts at the same height, the
    // degenerate case for interpolation (and for the old middle-marker
    // read, which pinned p99 to the median forever).
    let mut q = P2Quantile::new(0.99);
    for _ in 0..5 {
        q.record(5.0);
    }
    assert_eq!(q.value(), 5.0);
    q.record(9.0);
    let streamed = q.value();
    let exact6 = exact(&[5.0, 5.0, 5.0, 5.0, 5.0, 9.0], 99.0);
    assert!(
        streamed > 5.0,
        "p99 stuck at the duplicate bulk: {streamed} (exact {exact6})"
    );
    assert_close("dup p99 at n=6", streamed, exact6, 0.10);

    // A feed that stays duplicate past the transition must stay exact.
    let mut q = P2Quantile::new(0.99);
    for _ in 0..32 {
        q.record(7.25);
    }
    assert_eq!(q.value(), 7.25);

    // Duplicates with one early outlier: the transition must not amplify it.
    let mut q = P2Quantile::new(0.99);
    for x in [2.0, 2.0, 2.0, 2.0, 10.0, 2.0, 2.0, 2.0] {
        q.record(x);
    }
    let v = q.value();
    assert!((2.0..=10.0).contains(&v), "p99 left the sample range: {v}");
}

#[test]
fn small_stream_tails_track_exact_percentiles() {
    // With marker interpolation the estimator stays near the exact
    // percentile through the whole small-n regime, not just at n <= 5.
    let feed: Vec<f64> = (1..=40).map(|i| ((i * 17) % 40) as f64).collect();
    let mut q = P2Quantile::new(0.99);
    for (i, &x) in feed.iter().enumerate() {
        q.record(x);
        if i >= 5 {
            let ex = exact(&feed[..=i], 99.0);
            assert_close(&format!("p99 at n={}", i + 1), q.value(), ex, 0.25);
        }
    }
}

#[test]
fn sorted_and_reversed_feeds_stay_bounded() {
    // Monotone feeds are the classic P² stress: desired positions race
    // ahead of actual ones on one side.
    let asc: Vec<f64> = (0..20_000).map(|i| i as f64).collect();
    let desc: Vec<f64> = asc.iter().rev().copied().collect();
    for (label, feed) in [("ascending", &asc), ("descending", &desc)] {
        let mut t = TailQuantiles::new();
        t.extend(feed.iter().copied());
        assert_close(&format!("{label} p50"), t.p50(), exact(feed, 50.0), 0.10);
        assert_close(&format!("{label} p99"), t.p99(), exact(feed, 99.0), 0.10);
    }
}
