//! Property tests over the simulation kernel's determinism contracts.
//!
//! These are the invariants the scenario-suite runner leans on: the event
//! queue is a total order (time, then FIFO) no matter how schedules and
//! cancellations interleave, and `SeedTree` streams depend only on their
//! *names*, never on the order anything else was derived — which is what
//! makes parallel suite execution bit-identical to serial execution.

use proptest::prelude::*;
use rand::Rng;

use pictor_sim::{EventQueue, SeedTree, SimTime};

/// One step of an arbitrary queue workload.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule at `now + offset`.
    Schedule(u64),
    /// Cancel the pending event at this index (mod pending length).
    Cancel(usize),
    /// Pop the earliest live event.
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..6, 0u64..1_000, 0usize..64).prop_map(|(kind, offset, idx)| match kind {
        0..=2 => Op::Schedule(offset),
        3 => Op::Cancel(idx),
        _ => Op::Pop,
    })
}

proptest! {
    /// Under arbitrary schedule/cancel/pop interleavings the queue pops in
    /// nondecreasing time with FIFO tie-breaking, never yields a cancelled
    /// event, and conserves events (scheduled = popped + cancelled + left).
    #[test]
    fn event_queue_orders_any_interleaving(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut q: EventQueue<u64> = EventQueue::new();
        // Pending (seq, time) pairs still cancellable, with their ids.
        let mut pending: Vec<(pictor_sim::EventId, u64, SimTime)> = Vec::new();
        let mut next_payload = 0u64;
        let mut scheduled = 0u64;
        let mut cancelled = 0u64;
        let mut popped = 0u64;
        let mut last: Option<(SimTime, u64)> = None;
        for op in ops {
            match op {
                Op::Schedule(offset) => {
                    let t = q.now() + pictor_sim::SimDuration::from_nanos(offset);
                    let id = q.schedule(t, next_payload);
                    pending.push((id, next_payload, t));
                    next_payload += 1;
                    scheduled += 1;
                }
                Op::Cancel(idx) => {
                    if !pending.is_empty() {
                        let (id, _, _) = pending.remove(idx % pending.len());
                        prop_assert!(q.cancel(id), "live pending event must cancel");
                        prop_assert!(!q.cancel(id), "double cancel must report false");
                        cancelled += 1;
                    }
                }
                Op::Pop => {
                    if let Some((t, payload)) = q.pop() {
                        popped += 1;
                        if let Some((lt, lp)) = last {
                            prop_assert!(t >= lt, "time went backwards: {t} after {lt}");
                            if t == lt {
                                prop_assert!(
                                    payload > lp,
                                    "FIFO tie-break violated: {payload} after {lp}"
                                );
                            }
                        }
                        let pos = pending.iter().position(|&(_, p, _)| p == payload);
                        prop_assert!(pos.is_some(), "popped a cancelled/unknown event");
                        let (_, _, scheduled_t) = pending.remove(pos.expect("checked"));
                        prop_assert_eq!(scheduled_t, t, "popped at a different time");
                        last = Some((t, payload));
                    }
                }
            }
        }
        // Drain the rest; the same invariants must hold to exhaustion.
        while let Some((t, payload)) = q.pop() {
            popped += 1;
            if let Some((lt, lp)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(payload > lp);
                }
            }
            let pos = pending.iter().position(|&(_, p, _)| p == payload);
            prop_assert!(pos.is_some(), "drained a cancelled/unknown event");
            pending.remove(pos.expect("checked"));
            last = Some((t, payload));
        }
        prop_assert_eq!(scheduled, popped + cancelled + pending.len() as u64);
        prop_assert!(pending.is_empty(), "live events left unpopped: {}", pending.len());
    }

    /// A stream's sequence depends only on (master seed, name): deriving
    /// streams and child trees in any order — or deriving extra ones in
    /// between — never changes another stream's output.
    #[test]
    fn seed_tree_streams_are_order_independent(
        master in any::<u64>(),
        name_ids in prop::collection::vec(any::<u32>(), 2..8),
        draws in 1usize..32,
    ) {
        let names: Vec<String> = name_ids.iter().map(|id| format!("stream-{id:x}")).collect();
        let tree = SeedTree::new(master);
        // Reference: derive each name's stream alone, in declaration order.
        let reference: Vec<Vec<u64>> = names
            .iter()
            .map(|n| {
                let mut rng = tree.stream(n);
                (0..draws).map(|_| rng.gen::<u64>()).collect()
            })
            .collect();
        // Re-derive in reverse order, interleaving unrelated derivations.
        for (i, name) in names.iter().enumerate().rev() {
            let _ = tree.child(&format!("noise-{name}"));
            let _ = tree.stream("unrelated");
            let mut rng = tree.stream(name);
            let replay: Vec<u64> = (0..draws).map(|_| rng.gen::<u64>()).collect();
            prop_assert_eq!(&replay, &reference[i], "stream {} changed", name);
        }
        // Child trees are order-independent too: the same path gives the
        // same master regardless of sibling derivations.
        let a = tree.child("a").child("b").master();
        let _ = tree.child("z");
        let b = tree.child("a").child("b").master();
        prop_assert_eq!(a, b);
    }

    /// Distinct names yield distinct streams (no accidental collisions in
    /// the small name spaces suites use).
    #[test]
    fn seed_tree_distinct_names_distinct_streams(
        master in any::<u64>(),
        a in any::<u32>(),
        b in any::<u32>(),
    ) {
        prop_assume!(a != b);
        let tree = SeedTree::new(master);
        prop_assert_ne!(
            tree.seed_for(&format!("s{a}")),
            tree.seed_for(&format!("s{b}"))
        );
    }
}
