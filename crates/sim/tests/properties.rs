//! Property tests over the simulation kernel's determinism contracts.
//!
//! These are the invariants the scenario-suite runner leans on: the event
//! queue is a total order (time, then FIFO) no matter how schedules and
//! cancellations interleave, and `SeedTree` streams depend only on their
//! *names*, never on the order anything else was derived — which is what
//! makes parallel suite execution bit-identical to serial execution.

use std::collections::HashSet;

use proptest::prelude::*;
use rand::Rng;

use pictor_sim::{EventQueue, SeedTree, ShardedQueues, SimTime};

/// One step of an arbitrary queue workload.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule at `now + offset`.
    Schedule(u64),
    /// Cancel the pending event at this index (mod pending length).
    Cancel(usize),
    /// Pop the earliest live event.
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..6, 0u64..1_000, 0usize..64).prop_map(|(kind, offset, idx)| match kind {
        0..=2 => Op::Schedule(offset),
        3 => Op::Cancel(idx),
        _ => Op::Pop,
    })
}

proptest! {
    /// Under arbitrary schedule/cancel/pop interleavings the queue pops in
    /// nondecreasing time with FIFO tie-breaking, never yields a cancelled
    /// event, and conserves events (scheduled = popped + cancelled + left).
    #[test]
    fn event_queue_orders_any_interleaving(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut q: EventQueue<u64> = EventQueue::new();
        // Pending (seq, time) pairs still cancellable, with their ids.
        let mut pending: Vec<(pictor_sim::EventId, u64, SimTime)> = Vec::new();
        let mut next_payload = 0u64;
        let mut scheduled = 0u64;
        let mut cancelled = 0u64;
        let mut popped = 0u64;
        let mut last: Option<(SimTime, u64)> = None;
        for op in ops {
            match op {
                Op::Schedule(offset) => {
                    let t = q.now() + pictor_sim::SimDuration::from_nanos(offset);
                    let id = q.schedule(t, next_payload);
                    pending.push((id, next_payload, t));
                    next_payload += 1;
                    scheduled += 1;
                }
                Op::Cancel(idx) => {
                    if !pending.is_empty() {
                        let (id, _, _) = pending.remove(idx % pending.len());
                        prop_assert!(q.cancel(id), "live pending event must cancel");
                        prop_assert!(!q.cancel(id), "double cancel must report false");
                        cancelled += 1;
                    }
                }
                Op::Pop => {
                    if let Some((t, payload)) = q.pop() {
                        popped += 1;
                        if let Some((lt, lp)) = last {
                            prop_assert!(t >= lt, "time went backwards: {t} after {lt}");
                            if t == lt {
                                prop_assert!(
                                    payload > lp,
                                    "FIFO tie-break violated: {payload} after {lp}"
                                );
                            }
                        }
                        let pos = pending.iter().position(|&(_, p, _)| p == payload);
                        prop_assert!(pos.is_some(), "popped a cancelled/unknown event");
                        let (_, _, scheduled_t) = pending.remove(pos.expect("checked"));
                        prop_assert_eq!(scheduled_t, t, "popped at a different time");
                        last = Some((t, payload));
                    }
                }
            }
        }
        // Drain the rest; the same invariants must hold to exhaustion.
        while let Some((t, payload)) = q.pop() {
            popped += 1;
            if let Some((lt, lp)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(payload > lp);
                }
            }
            let pos = pending.iter().position(|&(_, p, _)| p == payload);
            prop_assert!(pos.is_some(), "drained a cancelled/unknown event");
            pending.remove(pos.expect("checked"));
            last = Some((t, payload));
        }
        prop_assert_eq!(scheduled, popped + cancelled + pending.len() as u64);
        prop_assert!(pending.is_empty(), "live events left unpopped: {}", pending.len());
    }

    /// A stream's sequence depends only on (master seed, name): deriving
    /// streams and child trees in any order — or deriving extra ones in
    /// between — never changes another stream's output.
    #[test]
    fn seed_tree_streams_are_order_independent(
        master in any::<u64>(),
        name_ids in prop::collection::vec(any::<u32>(), 2..8),
        draws in 1usize..32,
    ) {
        let names: Vec<String> = name_ids.iter().map(|id| format!("stream-{id:x}")).collect();
        let tree = SeedTree::new(master);
        // Reference: derive each name's stream alone, in declaration order.
        let reference: Vec<Vec<u64>> = names
            .iter()
            .map(|n| {
                let mut rng = tree.stream(n);
                (0..draws).map(|_| rng.gen::<u64>()).collect()
            })
            .collect();
        // Re-derive in reverse order, interleaving unrelated derivations.
        for (i, name) in names.iter().enumerate().rev() {
            let _ = tree.child(&format!("noise-{name}"));
            let _ = tree.stream("unrelated");
            let mut rng = tree.stream(name);
            let replay: Vec<u64> = (0..draws).map(|_| rng.gen::<u64>()).collect();
            prop_assert_eq!(&replay, &reference[i], "stream {} changed", name);
        }
        // Child trees are order-independent too: the same path gives the
        // same master regardless of sibling derivations.
        let a = tree.child("a").child("b").master();
        let _ = tree.child("z");
        let b = tree.child("a").child("b").master();
        prop_assert_eq!(a, b);
    }

    /// Cancelling events mid-run (after an arbitrary pop prefix) never
    /// perturbs the deterministic (time, shard, insertion) merge order of
    /// the survivors: the drained tail equals a reference run that only
    /// ever scheduled the survivors — the contract fault-driven departure
    /// cancellation in the fleet engine leans on.
    #[test]
    fn sharded_merge_survives_mid_run_cancellation(
        shard_count in 1usize..5,
        events in prop::collection::vec((0usize..5, 0u64..50), 1..120),
        cancel_mask in prop::collection::vec(any::<bool>(), 120..121),
        pop_prefix in 0usize..40,
    ) {
        let mut q: ShardedQueues<u64> = ShardedQueues::new(shard_count);
        let mut ids = Vec::with_capacity(events.len());
        for (i, &(s, t)) in events.iter().enumerate() {
            let shard = s % shard_count;
            let id = q.schedule(shard, SimTime::from_nanos(t), i as u64);
            ids.push((shard, id));
        }
        // Pop an arbitrary prefix first — cancellation happens mid-run,
        // against queues whose pools and clocks have already moved.
        let mut popped_set: HashSet<u64> = HashSet::new();
        for _ in 0..pop_prefix {
            match q.pop_min() {
                Some((_, _, payload)) => {
                    popped_set.insert(payload);
                }
                None => break,
            }
        }
        // Cancel a subset of the still-live events.
        let mut cancelled: HashSet<u64> = HashSet::new();
        for (i, &(shard, id)) in ids.iter().enumerate() {
            if popped_set.contains(&(i as u64)) {
                continue;
            }
            if cancel_mask[i % cancel_mask.len()] {
                prop_assert!(q.cancel(shard, id), "live event must cancel");
                cancelled.insert(i as u64);
            }
        }
        // Reference: a queue that only ever saw the survivors, scheduled
        // in the original call order.
        let mut r: ShardedQueues<u64> = ShardedQueues::new(shard_count);
        for (i, &(s, t)) in events.iter().enumerate() {
            if cancelled.contains(&(i as u64)) {
                continue;
            }
            r.schedule(s % shard_count, SimTime::from_nanos(t), i as u64);
        }
        let mut reference = Vec::new();
        while let Some(ev) = r.pop_min() {
            // The prefix popped before cancellation drains first in both
            // runs; only the surviving tail is compared.
            if !popped_set.contains(&ev.2) {
                reference.push(ev);
            }
        }
        let mut remaining = Vec::new();
        while let Some(ev) = q.pop_min() {
            remaining.push(ev);
        }
        prop_assert_eq!(remaining, reference);
    }

    /// Distinct names yield distinct streams (no accidental collisions in
    /// the small name spaces suites use).
    #[test]
    fn seed_tree_distinct_names_distinct_streams(
        master in any::<u64>(),
        a in any::<u32>(),
        b in any::<u32>(),
    ) {
        prop_assume!(a != b);
        let tree = SeedTree::new(master);
        prop_assert_ne!(
            tree.seed_for(&format!("s{a}")),
            tree.seed_for(&format!("s{b}"))
        );
    }
}
