//! Shared-resource models: processor sharing and FIFO queues.
//!
//! [`PsResource`] models a pool served under processor sharing — the standard
//! abstraction for CPU pools (jobs are threads, capacity is core count) and
//! for bandwidth-shared links like PCIe or Ethernet (jobs are transfers,
//! capacity is bytes/second, "work" is bytes scaled to core-nanoseconds).
//! Whenever the active set changes, per-job service rates are recomputed and
//! the caller reschedules the next completion event.
//!
//! [`FifoResource`] models a single-server queue served in arrival order —
//! used for the GPU render engine, whose command stream is serialized.

use crate::time::{SimDuration, SimTime};

/// Identifier of a job inside a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

#[derive(Debug, Clone)]
struct PsJob {
    /// Remaining work in core-nanoseconds.
    remaining: f64,
    /// Individual speed multiplier (contention slowdown < 1.0 slows the job).
    speed: f64,
}

/// A processor-sharing resource.
///
/// Each active job receives an equal share of the capacity, bounded by one
/// server's worth (a thread cannot run faster than one core), then scaled by
/// its individual `speed` factor. The resource tracks a busy-capacity
/// integral so average utilization can be reported.
///
/// # Example
///
/// ```
/// use pictor_sim::{JobId, PsResource, SimDuration, SimTime};
///
/// let mut cpu = PsResource::new(2.0); // two cores
/// let t0 = SimTime::ZERO;
/// cpu.insert(t0, JobId(1), SimDuration::from_millis(10), 1.0);
/// // Alone on two cores, the job still runs at 1 core: done after 10 ms.
/// let (when, who) = cpu.next_completion(t0).unwrap();
/// assert_eq!(who, JobId(1));
/// assert_eq!(when, t0 + SimDuration::from_millis(10));
/// ```
#[derive(Debug, Clone)]
pub struct PsResource {
    capacity: f64,
    /// Active jobs sorted by id. A sorted `Vec` beats a `BTreeMap` here: the
    /// active set is small, iteration order stays deterministic (ascending
    /// ids), and slots are reused without per-node allocation.
    jobs: Vec<(JobId, PsJob)>,
    last_update: SimTime,
    busy_integral: f64, // core-nanoseconds of service delivered
    since: SimTime,
}

impl PsResource {
    /// Creates a resource with `capacity` servers (cores, or bytes/ns for links).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive and finite.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive: {capacity}"
        );
        PsResource {
            capacity,
            jobs: Vec::new(),
            last_update: SimTime::ZERO,
            busy_integral: 0.0,
            since: SimTime::ZERO,
        }
    }

    /// Position of `id` in the sorted job list.
    fn find(&self, id: JobId) -> Result<usize, usize> {
        self.jobs.binary_search_by_key(&id, |(jid, _)| *jid)
    }

    /// Total capacity in servers.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Number of active jobs.
    pub fn active_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Current per-job share of the capacity, before individual speed factors.
    ///
    /// Returns zero when idle.
    pub fn share(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            (self.capacity / self.jobs.len() as f64).min(1.0)
        }
    }

    /// Advances internal accounting to `now`, draining work from all jobs.
    ///
    /// Must be called (implicitly via the public methods) with monotonically
    /// non-decreasing times.
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_update).as_nanos() as f64;
        if dt > 0.0 {
            let share = self.share();
            let mut delivered = 0.0;
            for (_, job) in &mut self.jobs {
                let done = (share * job.speed * dt).min(job.remaining);
                job.remaining -= done;
                delivered += done;
            }
            self.busy_integral += delivered;
            self.last_update = now;
        } else if now > self.last_update {
            self.last_update = now;
        }
    }

    /// Inserts a job with `work` of nominal single-core service demand.
    ///
    /// `speed` is the job's individual rate multiplier (use values below 1.0
    /// to model contention slowdowns).
    ///
    /// # Panics
    ///
    /// Panics if the job already exists or `speed` is not strictly positive.
    pub fn insert(&mut self, now: SimTime, id: JobId, work: SimDuration, speed: f64) {
        assert!(speed.is_finite() && speed > 0.0, "bad speed {speed}");
        self.advance(now);
        let job = PsJob {
            remaining: work.as_nanos() as f64,
            speed,
        };
        match self.find(id) {
            // Ids are issued monotonically, so this is a tail push in practice.
            Err(pos) => self.jobs.insert(pos, (id, job)),
            Ok(_) => panic!("job {id:?} already active"),
        }
    }

    /// Removes a job (completed or aborted), returning its remaining work.
    pub fn remove(&mut self, now: SimTime, id: JobId) -> Option<SimDuration> {
        self.advance(now);
        match self.find(id) {
            Ok(pos) => {
                let (_, j) = self.jobs.remove(pos);
                Some(SimDuration::from_nanos(j.remaining.max(0.0).round() as u64))
            }
            Err(_) => None,
        }
    }

    /// Updates a job's speed multiplier (e.g. when co-runner contention changes).
    ///
    /// Returns `false` if the job is not active.
    pub fn set_speed(&mut self, now: SimTime, id: JobId, speed: f64) -> bool {
        assert!(speed.is_finite() && speed > 0.0, "bad speed {speed}");
        self.advance(now);
        match self.find(id) {
            Ok(pos) => {
                self.jobs[pos].1.speed = speed;
                true
            }
            Err(_) => false,
        }
    }

    /// Predicts the earliest (time, job) completion given current rates.
    ///
    /// Returns `None` when idle. The prediction is only valid until the next
    /// insert/remove/set_speed call; callers must re-query after any change.
    pub fn next_completion(&mut self, now: SimTime) -> Option<(SimTime, JobId)> {
        self.advance(now);
        let share = self.share();
        let mut best: Option<(f64, JobId)> = None;
        for &(id, ref job) in &self.jobs {
            let rate = share * job.speed;
            if rate <= 0.0 {
                continue;
            }
            let eta = job.remaining / rate;
            match best {
                Some((t, _)) if t <= eta => {}
                _ => best = Some((eta, id)),
            }
        }
        best.map(|(eta, id)| (now + SimDuration::from_nanos(eta.ceil() as u64), id))
    }

    /// Remaining work of a job, if active.
    pub fn remaining(&self, id: JobId) -> Option<SimDuration> {
        self.find(id)
            .ok()
            .map(|pos| SimDuration::from_nanos(self.jobs[pos].1.remaining.max(0.0).round() as u64))
    }

    /// Average busy capacity (in servers) over the window since the last
    /// [`PsResource::reset_utilization`] call, evaluated at `now`.
    pub fn utilization(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        let span = now.saturating_since(self.since).as_nanos() as f64;
        if span == 0.0 {
            0.0
        } else {
            self.busy_integral / span
        }
    }

    /// Restarts utilization accounting from `now`.
    pub fn reset_utilization(&mut self, now: SimTime) {
        self.advance(now);
        self.busy_integral = 0.0;
        self.since = now;
    }
}

#[derive(Debug, Clone)]
struct FifoJob {
    id: JobId,
    service: SimDuration,
}

/// A single-server FIFO queue with externally supplied service times.
///
/// The server's speed factor scales the service of the job *currently in
/// service* as well as future ones; the render engine uses this to model GPU
/// cache contention slowdowns.
///
/// # Example
///
/// ```
/// use pictor_sim::{FifoResource, JobId, SimDuration, SimTime};
///
/// let mut gpu = FifoResource::new();
/// let t0 = SimTime::ZERO;
/// gpu.enqueue(t0, JobId(1), SimDuration::from_millis(4));
/// gpu.enqueue(t0, JobId(2), SimDuration::from_millis(4));
/// let (t1, j1) = gpu.next_completion(t0).unwrap();
/// assert_eq!(j1, JobId(1));
/// gpu.complete(t1);
/// let (t2, j2) = gpu.next_completion(t1).unwrap();
/// assert_eq!(j2, JobId(2));
/// assert_eq!(t2, t0 + SimDuration::from_millis(8));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FifoResource {
    queue: std::collections::VecDeque<FifoJob>,
    in_service: Option<(JobId, SimTime, SimDuration)>, // (job, started, remaining at start)
    speed: f64,
    last_update: SimTime,
    busy_integral: f64,
    since: SimTime,
}

impl FifoResource {
    /// Creates an idle queue with unit speed.
    pub fn new() -> Self {
        FifoResource {
            queue: std::collections::VecDeque::new(),
            in_service: None,
            speed: 1.0,
            last_update: SimTime::ZERO,
            busy_integral: 0.0,
            since: SimTime::ZERO,
        }
    }

    /// Number of jobs waiting or in service.
    pub fn len(&self) -> usize {
        self.queue.len() + usize::from(self.in_service.is_some())
    }

    /// True if no job is waiting or in service.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn advance(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_update);
        if !dt.is_zero() {
            if let Some((id, started, remaining)) = self.in_service {
                let served = now.saturating_since(started).scale(self.speed);
                if served < remaining {
                    self.busy_integral += dt.as_nanos() as f64;
                    // keep (started, remaining) anchored; recompute on demand
                    let _ = id;
                } else {
                    // Busy only until the completion instant.
                    let completion = started + remaining.scale(1.0 / self.speed);
                    let busy = completion.saturating_since(self.last_update);
                    self.busy_integral += busy.as_nanos().min(dt.as_nanos()) as f64;
                }
            }
            self.last_update = now;
        }
    }

    fn start_next(&mut self, now: SimTime) {
        if self.in_service.is_none() {
            if let Some(job) = self.queue.pop_front() {
                self.in_service = Some((job.id, now, job.service));
            }
        }
    }

    /// Enqueues a job requiring `service` time at unit speed.
    pub fn enqueue(&mut self, now: SimTime, id: JobId, service: SimDuration) {
        self.advance(now);
        self.queue.push_back(FifoJob { id, service });
        self.start_next(now);
    }

    /// Changes the server speed factor (rebasing the in-service job).
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not strictly positive.
    pub fn set_speed(&mut self, now: SimTime, speed: f64) {
        assert!(speed.is_finite() && speed > 0.0, "bad speed {speed}");
        self.advance(now);
        if let Some((id, started, remaining)) = self.in_service {
            let served = now.saturating_since(started).scale(self.speed);
            let left = remaining.saturating_sub(served);
            self.in_service = Some((id, now, left));
        }
        self.speed = speed;
    }

    /// Current server speed factor.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Predicted completion of the job in service, if any.
    pub fn next_completion(&mut self, now: SimTime) -> Option<(SimTime, JobId)> {
        self.advance(now);
        self.start_next(now);
        self.in_service
            .map(|(id, started, remaining)| (started + remaining.scale(1.0 / self.speed), id))
    }

    /// Completes the in-service job at `now`, returning its id and starting
    /// the next queued job.
    ///
    /// # Panics
    ///
    /// Panics if no job is in service.
    pub fn complete(&mut self, now: SimTime) -> JobId {
        self.advance(now);
        let (id, _, _) = self.in_service.take().expect("no job in service");
        self.start_next(now);
        id
    }

    /// Fraction of time the server was busy since the last reset.
    pub fn utilization(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        let span = now.saturating_since(self.since).as_nanos() as f64;
        if span == 0.0 {
            0.0
        } else {
            self.busy_integral / span
        }
    }

    /// Restarts utilization accounting from `now`.
    pub fn reset_utilization(&mut self, now: SimTime) {
        self.advance(now);
        self.busy_integral = 0.0;
        self.since = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }
    fn at(v: u64) -> SimTime {
        SimTime::ZERO + ms(v)
    }

    #[test]
    fn single_job_runs_at_one_core() {
        let mut cpu = PsResource::new(8.0);
        cpu.insert(SimTime::ZERO, JobId(1), ms(10), 1.0);
        let (t, id) = cpu.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(id, JobId(1));
        assert_eq!(t, at(10));
    }

    #[test]
    fn oversubscription_slows_jobs() {
        // 2 cores, 4 identical jobs: each runs at 0.5 cores => 20ms for 10ms work.
        let mut cpu = PsResource::new(2.0);
        for i in 0..4 {
            cpu.insert(SimTime::ZERO, JobId(i), ms(10), 1.0);
        }
        let (t, _) = cpu.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(t, at(20));
    }

    #[test]
    fn undersubscription_caps_at_one_core() {
        let mut cpu = PsResource::new(8.0);
        cpu.insert(SimTime::ZERO, JobId(0), ms(10), 1.0);
        cpu.insert(SimTime::ZERO, JobId(1), ms(20), 1.0);
        // Plenty of cores: both run at one core each.
        let (t, id) = cpu.next_completion(SimTime::ZERO).unwrap();
        assert_eq!((t, id), (at(10), JobId(0)));
        cpu.remove(t, JobId(0));
        let (t2, id2) = cpu.next_completion(t).unwrap();
        assert_eq!((t2, id2), (at(20), JobId(1)));
    }

    #[test]
    fn speed_factor_slows_individual_job() {
        let mut cpu = PsResource::new(4.0);
        cpu.insert(SimTime::ZERO, JobId(1), ms(10), 0.5);
        let (t, _) = cpu.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(t, at(20));
    }

    #[test]
    fn set_speed_mid_flight() {
        let mut cpu = PsResource::new(4.0);
        cpu.insert(SimTime::ZERO, JobId(1), ms(10), 1.0);
        // After 5ms, half the work remains; halving speed doubles remaining time.
        assert!(cpu.set_speed(at(5), JobId(1), 0.5));
        let (t, _) = cpu.next_completion(at(5)).unwrap();
        assert_eq!(t, at(15));
        assert!(!cpu.set_speed(at(5), JobId(99), 0.5));
    }

    #[test]
    fn dynamic_arrival_changes_rates() {
        // 1 core. Job A (10ms) alone for 5ms, then B arrives: both at 0.5.
        let mut cpu = PsResource::new(1.0);
        cpu.insert(SimTime::ZERO, JobId(1), ms(10), 1.0);
        cpu.insert(at(5), JobId(2), ms(10), 1.0);
        let (t, id) = cpu.next_completion(at(5)).unwrap();
        // A has 5ms left at rate 0.5 => finishes at 15ms.
        assert_eq!((t, id), (at(15), JobId(1)));
        cpu.remove(t, JobId(1));
        // B: ran 10ms at 0.5 => 5ms left, now alone at rate 1 => 20ms.
        let (t2, id2) = cpu.next_completion(t).unwrap();
        assert_eq!((t2, id2), (at(20), JobId(2)));
    }

    #[test]
    fn utilization_accounting() {
        let mut cpu = PsResource::new(4.0);
        cpu.insert(SimTime::ZERO, JobId(1), ms(10), 1.0);
        cpu.remove(at(10), JobId(1));
        // 10ms of 1-core work over 20ms window on a 4-core pool = 0.5 cores avg.
        let util = cpu.utilization(at(20));
        assert!((util - 0.5).abs() < 1e-9, "util={util}");
        cpu.reset_utilization(at(20));
        assert_eq!(cpu.utilization(at(20)), 0.0);
    }

    #[test]
    fn remove_returns_remaining() {
        let mut cpu = PsResource::new(1.0);
        cpu.insert(SimTime::ZERO, JobId(1), ms(10), 1.0);
        let left = cpu.remove(at(4), JobId(1)).unwrap();
        assert_eq!(left, ms(6));
        assert!(cpu.remove(at(4), JobId(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn duplicate_insert_panics() {
        let mut cpu = PsResource::new(1.0);
        cpu.insert(SimTime::ZERO, JobId(1), ms(1), 1.0);
        cpu.insert(SimTime::ZERO, JobId(1), ms(1), 1.0);
    }

    #[test]
    fn fifo_serves_in_order() {
        let mut gpu = FifoResource::new();
        gpu.enqueue(SimTime::ZERO, JobId(1), ms(4));
        gpu.enqueue(SimTime::ZERO, JobId(2), ms(6));
        let (t1, j1) = gpu.next_completion(SimTime::ZERO).unwrap();
        assert_eq!((t1, j1), (at(4), JobId(1)));
        assert_eq!(gpu.complete(t1), JobId(1));
        let (t2, j2) = gpu.next_completion(t1).unwrap();
        assert_eq!((t2, j2), (at(10), JobId(2)));
        assert_eq!(gpu.complete(t2), JobId(2));
        assert!(gpu.is_empty());
    }

    #[test]
    fn fifo_speed_change_rebases() {
        let mut gpu = FifoResource::new();
        gpu.enqueue(SimTime::ZERO, JobId(1), ms(10));
        gpu.set_speed(at(5), 0.5); // 5ms left at half speed => 10ms more
        let (t, _) = gpu.next_completion(at(5)).unwrap();
        assert_eq!(t, at(15));
        assert_eq!(gpu.speed(), 0.5);
    }

    #[test]
    fn fifo_utilization() {
        let mut gpu = FifoResource::new();
        gpu.enqueue(SimTime::ZERO, JobId(1), ms(5));
        let (t, _) = gpu.next_completion(SimTime::ZERO).unwrap();
        gpu.complete(t);
        let util = gpu.utilization(at(10));
        assert!((util - 0.5).abs() < 1e-6, "util={util}");
    }

    #[test]
    fn fifo_len_tracks_jobs() {
        let mut gpu = FifoResource::new();
        assert!(gpu.is_empty());
        gpu.enqueue(SimTime::ZERO, JobId(1), ms(1));
        gpu.enqueue(SimTime::ZERO, JobId(2), ms(1));
        assert_eq!(gpu.len(), 2);
    }

    #[test]
    #[should_panic(expected = "no job in service")]
    fn fifo_complete_empty_panics() {
        let mut gpu = FifoResource::new();
        gpu.complete(SimTime::ZERO);
    }
}
