//! Virtual time: nanosecond-resolution instants and durations.
//!
//! [`SimTime`] is an absolute instant on the simulation clock and
//! [`SimDuration`] a span between instants. Both are thin wrappers over `u64`
//! nanoseconds so that arithmetic is exact and ordering is total — important
//! for deterministic event replay.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since start.
///
/// ```
/// use pictor_sim::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// ```
/// use pictor_sim::SimDuration;
/// let d = SimDuration::from_micros(250) * 4;
/// assert_eq!(d.as_millis_f64(), 1.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the simulation origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since the origin as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Creates a duration from fractional milliseconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Raw nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales the duration by a non-negative factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid scale factor: {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.max(rhs.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.min(rhs.0))
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({:.3}ms)", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn float_roundtrip() {
        let d = SimDuration::from_secs_f64(0.123_456_789);
        assert_eq!(d.as_nanos(), 123_456_789);
        assert!((d.as_secs_f64() - 0.123_456_789).abs() < 1e-12);
        let ms = SimDuration::from_millis_f64(16.7);
        assert_eq!(ms.as_nanos(), 16_700_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        let t2 = t + SimDuration::from_millis(5);
        assert_eq!(t2 - t, SimDuration::from_millis(5));
        assert_eq!(t2.saturating_since(t), SimDuration::from_millis(5));
        assert_eq!(t.saturating_since(t2), SimDuration::ZERO);
        assert_eq!(t.checked_since(t2), None);
        assert_eq!(
            SimDuration::from_millis(6) * 3,
            SimDuration::from_millis(18)
        );
        assert_eq!(
            SimDuration::from_millis(18) / 3,
            SimDuration::from_millis(6)
        );
    }

    #[test]
    fn scale_rounds() {
        let d = SimDuration::from_nanos(100);
        assert_eq!(d.scale(1.5).as_nanos(), 150);
        assert_eq!(d.scale(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::ZERO - SimTime::from_nanos(1);
    }

    #[test]
    fn sum_and_minmax() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&ms| SimDuration::from_millis(ms))
            .sum();
        assert_eq!(total, SimDuration::from_millis(6));
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_millis(1).to_string(), "1.000ms");
        assert_eq!(SimTime::from_secs(1).to_string(), "1.000000s");
        assert!(format!("{:?}", SimTime::ZERO).contains("SimTime"));
    }
}
