//! The wall-clock / virtual-clock bridge.
//!
//! Offline simulation owns its clock: time is a [`SimTime`] the event loop
//! advances. A *serving* process does not — requests arrive whenever the
//! outside world sends them. [`SimClock`] bridges the two: a **wall** clock
//! maps real elapsed time onto the simulation timeline (so a live daemon
//! can stamp ingress events with `SimTime`s the deterministic core
//! understands), while a **virtual** clock is advanced explicitly by the
//! driver (so tests, load generators and journal replay run
//! as-fast-as-possible and reproduce the exact same timestamps every run).
//!
//! The rule that keeps record/replay airtight: the clock is read **once**
//! per ingress event, at stamping time, and the stamped value is what gets
//! journaled — replay never consults a clock at all, it feeds the stamped
//! stream back.

use std::time::{Duration, Instant};

use crate::time::SimTime;

/// A monotone clock producing [`SimTime`]s, either bound to the host's
/// wall clock or advanced explicitly.
///
/// ```
/// use pictor_sim::{SimClock, SimTime};
/// let mut clock = SimClock::virtual_start();
/// assert_eq!(clock.now(), SimTime::ZERO);
/// clock.advance_to(SimTime::from_secs(3));
/// assert_eq!(clock.now(), SimTime::from_secs(3));
/// // Advancing backwards is a no-op: the clock is monotone.
/// clock.advance_to(SimTime::from_secs(1));
/// assert_eq!(clock.now(), SimTime::from_secs(3));
/// ```
#[derive(Debug, Clone)]
pub enum SimClock {
    /// Real time: `now()` is the wall-clock span since `origin`.
    Wall {
        /// The instant that maps to `SimTime::ZERO`.
        origin: Instant,
    },
    /// Driver-owned time: `now()` is whatever was last set.
    Virtual {
        /// The current instant.
        now: SimTime,
    },
}

impl SimClock {
    /// A wall clock whose origin is this call.
    pub fn wall_start() -> Self {
        SimClock::Wall {
            origin: Instant::now(),
        }
    }

    /// A virtual clock at `SimTime::ZERO`.
    pub fn virtual_start() -> Self {
        SimClock::Virtual { now: SimTime::ZERO }
    }

    /// True for the driver-owned variant.
    pub fn is_virtual(&self) -> bool {
        matches!(self, SimClock::Virtual { .. })
    }

    /// The current instant on the simulation timeline. Wall reads are
    /// monotone because `Instant` is; virtual reads return the last value
    /// set by [`advance_to`](Self::advance_to).
    pub fn now(&self) -> SimTime {
        match self {
            SimClock::Wall { origin } => {
                SimTime::from_nanos(origin.elapsed().as_nanos().min(u64::MAX as u128) as u64)
            }
            SimClock::Virtual { now } => *now,
        }
    }

    /// Moves a virtual clock forward to `t` (backwards moves are ignored —
    /// the clock never runs backwards). On a wall clock this is a no-op:
    /// real time cannot be steered.
    pub fn advance_to(&mut self, t: SimTime) {
        if let SimClock::Virtual { now } = self {
            *now = (*now).max(t);
        }
    }

    /// Blocks until the clock reads at least `t`: a wall clock sleeps the
    /// remaining real time, a virtual clock jumps immediately. This is
    /// what paces an open-loop load generator in wall mode while letting
    /// the same code run flat-out under a virtual clock.
    pub fn sleep_until(&mut self, t: SimTime) {
        match self {
            SimClock::Wall { origin } => {
                let deadline = *origin + Duration::from_nanos(t.as_nanos());
                let now = Instant::now();
                if deadline > now {
                    std::thread::sleep(deadline - now);
                }
            }
            SimClock::Virtual { now } => *now = (*now).max(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_explicit_and_monotone() {
        let mut c = SimClock::virtual_start();
        assert!(c.is_virtual());
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_to(SimTime::from_nanos(5_000_000));
        assert_eq!(c.now().as_nanos(), 5_000_000);
        c.advance_to(SimTime::from_nanos(1));
        assert_eq!(c.now().as_nanos(), 5_000_000, "never runs backwards");
        c.sleep_until(SimTime::from_secs(1));
        assert_eq!(c.now(), SimTime::from_secs(1), "virtual sleep jumps");
    }

    #[test]
    fn wall_clock_moves_forward_on_its_own() {
        let mut c = SimClock::wall_start();
        assert!(!c.is_virtual());
        let a = c.now();
        std::thread::sleep(Duration::from_millis(2));
        let b = c.now();
        assert!(b > a, "wall clock must advance with real time");
        c.advance_to(SimTime::from_secs(100));
        assert!(
            c.now() < SimTime::from_secs(100),
            "wall time cannot be steered"
        );
    }

    #[test]
    fn wall_sleep_until_reaches_the_deadline() {
        let mut c = SimClock::wall_start();
        let target = c.now() + crate::SimDuration::from_millis(3);
        c.sleep_until(target);
        assert!(c.now() >= target);
    }
}
