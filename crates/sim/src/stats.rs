//! Measurement statistics: streaming summaries, percentile distributions and
//! time-weighted averages.
//!
//! The performance framework reports RTT distributions as mean plus
//! 1/25/75/99-percentiles (paper Fig. 6); [`Distribution`] captures exactly
//! that from retained samples. [`Summary`] is a constant-space Welford
//! accumulator for high-volume streams, and [`TimeWeighted`] integrates
//! piecewise-constant signals (utilization, queue depth) over virtual time.

use crate::time::{SimDuration, SimTime};

/// Constant-space streaming summary (Welford's algorithm).
///
/// ```
/// use pictor_sim::Summary;
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] { s.record(x); }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (zero for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A sample-retaining distribution with percentile queries.
///
/// Used for the latency distributions the paper plots (mean, 1%, 25%, 75%,
/// 99% tiles).
///
/// ```
/// use pictor_sim::Distribution;
/// let d: Distribution = (1..=100).map(|v| v as f64).collect();
/// assert_eq!(d.percentile(50.0), 50.5);
/// assert_eq!(d.percentile(99.0), 99.01);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Distribution {
    samples: Vec<f64>,
    sorted: bool,
}

impl Distribution {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Distribution {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Records a duration in milliseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no observation was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sample mean (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN by invariant"));
            self.sorted = true;
        }
    }

    /// Linear-interpolated percentile `p` in `[0, 100]`.
    ///
    /// Returns zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN by invariant"));
        percentile_sorted(&sorted, p)
    }

    /// Percentile query that sorts in place once — preferred when issuing many
    /// queries against a finished distribution.
    pub fn percentile_mut(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        percentile_sorted(&self.samples, p)
    }

    /// The five-point summary the paper plots: (mean, p1, p25, p75, p99).
    pub fn five_point(&mut self) -> FivePoint {
        FivePoint {
            mean: self.mean(),
            p1: self.percentile_mut(1.0),
            p25: self.percentile_mut(25.0),
            p75: self.percentile_mut(75.0),
            p99: self.percentile_mut(99.0),
        }
    }

    /// Immutable view of the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl FromIterator<f64> for Distribution {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut d = Distribution::new();
        for x in iter {
            d.record(x);
        }
        d
    }
}

impl Extend<f64> for Distribution {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The five-point latency summary plotted in the paper's Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FivePoint {
    /// Sample mean.
    pub mean: f64,
    /// 1st percentile.
    pub p1: f64,
    /// 25th percentile.
    pub p25: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Constant-space streaming quantile estimator (the P² algorithm of Jain &
/// Chlamtac, CACM 1985).
///
/// Maintains five markers whose heights track the quantile and its
/// neighborhood; memory and per-observation cost are O(1) regardless of
/// stream length, which is what fleet-scale tail-latency accounting needs
/// (millions of RTT samples across servers). Until five observations have
/// arrived the estimate is the exact sorted-sample percentile. The
/// estimator is fully deterministic: the same observation sequence always
/// yields the same estimate.
///
/// ```
/// use pictor_sim::P2Quantile;
/// let mut q = P2Quantile::new(0.5);
/// for x in 1..=1000 { q.record(x as f64); }
/// assert!((q.value() - 500.5).abs() < 10.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (sorted ascending once initialized).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per observation.
    increments: [f64; 5],
    n: u64,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile out of range: {q}");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            n: 0,
        }
    }

    /// The tracked quantile.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        if self.n < 5 {
            // Initialization: collect and keep the first five sorted.
            let n = self.n as usize;
            self.heights[n] = x;
            self.n += 1;
            let live = self.n as usize;
            self.heights[..live].sort_by(|a, b| a.partial_cmp(b).expect("no NaN by invariant"));
            return;
        }
        self.n += 1;
        // Find the cell k with heights[k] <= x < heights[k+1], extending the
        // extreme markers when x falls outside them.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            while k < 3 && x >= self.heights[k + 1] {
                k += 1;
            }
            k
        };
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }
        // Adjust the three interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    /// Piecewise-parabolic (P²) height update for marker `i` moved by `d`.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    /// Linear fallback when the parabolic prediction is non-monotone.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate (zero when no observation was recorded).
    pub fn value(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        if self.n <= 5 {
            // Exact linear-interpolated percentile over the sorted prefix.
            return percentile_sorted(&self.heights[..self.n as usize], self.q * 100.0);
        }
        // Interpolate the piecewise-linear marker curve (positions[i],
        // heights[i]) at the target rank 1 + (n-1)q. Returning the middle
        // marker outright (the textbook read of P²) is only asymptotically
        // right: its desired rank reaches the extreme quantiles slowly, so
        // p99 over a small stream collapses toward the median and jumps
        // discontinuously at the exact→P² handover after five samples.
        // Marker positions are ranks 1..=n with gaps >= 1, so the clamp
        // always lands in a well-defined cell.
        let rank = (1.0 + (self.n - 1) as f64 * self.q).clamp(self.positions[0], self.positions[4]);
        let mut i = 0;
        while i < 3 && self.positions[i + 1] < rank {
            i += 1;
        }
        let frac = (rank - self.positions[i]) / (self.positions[i + 1] - self.positions[i]);
        // h0 + frac*(h1-h0) (not the symmetric lerp): exact when the cell is
        // flat, so constant streams report the constant bit-for-bit.
        self.heights[i] + frac * (self.heights[i + 1] - self.heights[i])
    }
}

/// Streaming tail summary: p50/p95/p99 [`P2Quantile`] markers plus count,
/// min and max — the fleet report's per-metric accumulator.
///
/// ```
/// use pictor_sim::TailQuantiles;
/// let mut t = TailQuantiles::new();
/// for x in 1..=100 { t.record(x as f64); }
/// assert_eq!(t.count(), 100);
/// assert!(t.p50() > 40.0 && t.p50() < 60.0);
/// assert!(t.p99() >= t.p95() && t.p95() >= t.p50());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TailQuantiles {
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
    min: f64,
    max: f64,
    n: u64,
}

impl TailQuantiles {
    /// Creates an empty summary.
    pub fn new() -> Self {
        TailQuantiles {
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            n: 0,
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn record(&mut self, x: f64) {
        self.p50.record(x);
        self.p95.record(x);
        self.p99.record(x);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.n += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// True when no observation was recorded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Median estimate (zero when empty).
    pub fn p50(&self) -> f64 {
        self.p50.value()
    }

    /// 95th-percentile estimate (zero when empty).
    pub fn p95(&self) -> f64 {
        self.p95.value()
    }

    /// 99th-percentile estimate (zero when empty).
    pub fn p99(&self) -> f64 {
        self.p99.value()
    }

    /// Minimum observation (zero when empty, matching the JSON emitters).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation (zero when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl Default for TailQuantiles {
    fn default() -> Self {
        Self::new()
    }
}

impl Extend<f64> for TailQuantiles {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

/// Time-weighted average of a piecewise-constant signal.
///
/// ```
/// use pictor_sim::{SimTime, TimeWeighted};
/// use pictor_sim::SimDuration;
/// let mut u = TimeWeighted::new(SimTime::ZERO, 0.0);
/// u.set(SimTime::ZERO + SimDuration::from_millis(10), 1.0);
/// let avg = u.average(SimTime::ZERO + SimDuration::from_millis(20));
/// assert!((avg - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWeighted {
    start: SimTime,
    last_time: SimTime,
    value: f64,
    integral: f64,
}

impl TimeWeighted {
    /// Starts integrating from `start` with initial `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            start,
            last_time: start,
            value,
            integral: 0.0,
        }
    }

    /// Updates the signal to `value` at time `t`.
    pub fn set(&mut self, t: SimTime, value: f64) {
        let dt = t.saturating_since(self.last_time).as_nanos() as f64;
        self.integral += self.value * dt;
        self.last_time = t;
        self.value = value;
    }

    /// Adds `delta` to the current value at time `t`.
    pub fn add(&mut self, t: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(t, v);
    }

    /// Current value of the signal.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Average value over `[start, now]`.
    pub fn average(&self, now: SimTime) -> f64 {
        let span = now.saturating_since(self.start).as_nanos() as f64;
        if span == 0.0 {
            return self.value;
        }
        let pending = self.value * now.saturating_since(self.last_time).as_nanos() as f64;
        (self.integral + pending) / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn summary_merge_matches_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Summary::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.record(3.0);
        let b = Summary::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Summary::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 3.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let d: Distribution = (0..=10).map(|v| v as f64).collect();
        assert_eq!(d.percentile(0.0), 0.0);
        assert_eq!(d.percentile(100.0), 10.0);
        assert_eq!(d.percentile(50.0), 5.0);
        assert_eq!(d.percentile(25.0), 2.5);
    }

    #[test]
    fn percentile_singleton() {
        let d: Distribution = std::iter::once(7.0).collect();
        assert_eq!(d.percentile(1.0), 7.0);
        assert_eq!(d.percentile(99.0), 7.0);
    }

    #[test]
    fn percentile_empty_is_zero() {
        let d = Distribution::new();
        assert_eq!(d.percentile(50.0), 0.0);
        assert!(d.is_empty());
    }

    #[test]
    fn five_point_ordering() {
        let mut d: Distribution = (0..1000).map(|v| v as f64).collect();
        let fp = d.five_point();
        assert!(fp.p1 <= fp.p25 && fp.p25 <= fp.p75 && fp.p75 <= fp.p99);
        assert!((fp.mean - 499.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_observation_panics() {
        let mut d = Distribution::new();
        d.record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_out_of_range_panics() {
        let d: Distribution = std::iter::once(1.0).collect();
        let _ = d.percentile(101.0);
    }

    #[test]
    fn record_duration_converts_to_ms() {
        let mut d = Distribution::new();
        d.record_duration(SimDuration::from_micros(1500));
        assert_eq!(d.samples(), &[1.5]);
    }

    #[test]
    fn p2_empty_and_tiny_streams_are_exact() {
        let q = P2Quantile::new(0.5);
        assert_eq!(q.value(), 0.0);
        let mut q = P2Quantile::new(0.5);
        q.record(7.0);
        assert_eq!(q.value(), 7.0);
        // Below five samples the estimate is the exact interpolated
        // percentile of the sorted prefix.
        let mut q = P2Quantile::new(0.5);
        for x in [4.0, 1.0, 3.0] {
            q.record(x);
        }
        assert_eq!(q.value(), 3.0);
        assert_eq!(q.count(), 3);
    }

    #[test]
    fn p2_tracks_uniform_median() {
        let mut q = P2Quantile::new(0.5);
        // Deterministic shuffled-ish order via a fixed stride walk.
        for i in 0..10_000u64 {
            q.record(((i * 7919) % 10_000) as f64);
        }
        let v = q.value();
        assert!((v - 5000.0).abs() < 150.0, "median estimate {v}");
    }

    #[test]
    fn p2_is_deterministic() {
        let run = || {
            let mut q = P2Quantile::new(0.95);
            for i in 0..1000u64 {
                q.record(((i * 31) % 997) as f64);
            }
            q.value()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn p2_rejects_bad_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn p2_rejects_nan() {
        let mut q = P2Quantile::new(0.5);
        q.record(f64::NAN);
    }

    #[test]
    fn tail_quantiles_order_and_extremes() {
        let mut t = TailQuantiles::new();
        assert!(t.is_empty());
        assert_eq!(t.min(), 0.0);
        assert_eq!(t.max(), 0.0);
        t.extend((1..=500).map(|v| v as f64));
        assert_eq!(t.count(), 500);
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.max(), 500.0);
        assert!(t.p50() <= t.p95() && t.p95() <= t.p99());
        assert!(t.p99() <= t.max());
    }

    #[test]
    fn time_weighted_average() {
        let t0 = SimTime::ZERO;
        let mut u = TimeWeighted::new(t0, 2.0);
        u.set(t0 + SimDuration::from_millis(10), 4.0);
        u.add(t0 + SimDuration::from_millis(20), -3.0);
        assert_eq!(u.value(), 1.0);
        // 2.0 for 10ms, 4.0 for 10ms, 1.0 for 10ms => avg over 30ms = 7/3.
        let avg = u.average(t0 + SimDuration::from_millis(30));
        assert!((avg - 7.0 / 3.0).abs() < 1e-12, "avg={avg}");
    }

    #[test]
    fn time_weighted_at_start_returns_value() {
        let u = TimeWeighted::new(SimTime::ZERO, 3.5);
        assert_eq!(u.average(SimTime::ZERO), 3.5);
    }

    #[test]
    fn extend_and_collect() {
        let mut d = Distribution::new();
        d.extend([1.0, 2.0]);
        assert_eq!(d.len(), 2);
        assert!((d.mean() - 1.5).abs() < 1e-12);
    }
}
