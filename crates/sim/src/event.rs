//! Cancellable, deterministic event queue.
//!
//! Events are ordered by timestamp; ties are broken by insertion order so a
//! simulation is fully deterministic given the same schedule calls. Events can
//! be cancelled in amortized `O(1)` via the [`EventId`] handle returned at
//! scheduling time: cancelled entries are skipped lazily on pop, and the heap
//! is compacted whenever tombstones outnumber live entries so cancel-heavy
//! workloads cannot grow the heap (or pop latency) without bound.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Handle to a scheduled event, used for cancellation.
///
/// ```
/// use pictor_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// let id = q.schedule(SimTime::from_nanos(10), "x");
/// assert!(q.cancel(id));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of timestamped events with deterministic tie-breaking.
///
/// The queue enforces that time never flows backwards: popping returns events
/// in non-decreasing time order, and [`EventQueue::now`] tracks the timestamp
/// of the last popped event.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Sequence numbers scheduled but not yet fired or cancelled.
    live: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The timestamp of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far (cancelled events excluded).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedules `payload` to fire at `time` and returns a cancellation handle.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current queue time — an event in
    /// the past indicates a model bug.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        assert!(
            time >= self.now,
            "scheduled event at {time} before now ({})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.heap.push(Entry { time, seq, payload });
        EventId(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired or been cancelled.
    /// Amortized `O(1)`: when tombstones outnumber live entries the heap is
    /// rebuilt without them (an `O(n)` pass paid for by the ≥ n/2 cancels
    /// that preceded it).
    pub fn cancel(&mut self, id: EventId) -> bool {
        let removed = self.live.remove(&id.0);
        if removed && self.heap.len() > 2 * self.live.len() + 64 {
            self.compact();
        }
        removed
    }

    /// Rebuilds the heap retaining only live entries.
    fn compact(&mut self) {
        let live = &self.live;
        let old = std::mem::take(&mut self.heap);
        self.heap = old.into_iter().filter(|e| live.contains(&e.seq)).collect();
    }

    /// Pops the earliest live event, advancing the queue clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if !self.live.remove(&entry.seq) {
                continue; // cancelled
            }
            self.now = entry.time;
            self.popped += 1;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Timestamp of the earliest live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if !self.live.contains(&entry.seq) {
                self.heap.pop();
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// True if no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Number of entries currently in the heap (including not-yet-skipped
    /// cancelled entries). Intended for capacity diagnostics.
    pub fn len_raw(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        let b = q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert!(!q.cancel(EventId(999)), "unknown id reports false");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(!q.cancel(b), "fired event cannot be cancelled");
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(7));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(5), ());
        q.pop();
        q.schedule(t(1), ());
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn mass_cancellation_compacts_heap() {
        // Regression: cancelled entries used to sit in the heap until
        // popped, so cancel-heavy workloads grew memory and pop latency
        // without bound. 100k schedules with 99% cancelled must leave a
        // heap proportional to the live count.
        let mut q = EventQueue::new();
        let mut ids = Vec::with_capacity(100_000);
        for i in 0..100_000u64 {
            ids.push(q.schedule(t(i + 1), i));
        }
        for (i, id) in ids.iter().enumerate() {
            if i % 100 != 0 {
                assert!(q.cancel(*id));
            }
        }
        let live = 1000;
        assert!(
            q.len_raw() <= 2 * live + 64,
            "tombstones not compacted: len_raw {}",
            q.len_raw()
        );
        let mut popped = 0u64;
        let mut last = SimTime::ZERO;
        while let Some((time, payload)) = q.pop() {
            assert!(time >= last, "time went backwards");
            assert_eq!(payload % 100, 0, "cancelled event fired");
            last = time;
            popped += 1;
        }
        assert_eq!(popped, live as u64);
    }

    #[test]
    fn schedule_cancel_interleaving_stays_bounded() {
        let mut q = EventQueue::new();
        for i in 0..100_000u64 {
            let id = q.schedule(t(i + 1), i);
            assert!(q.cancel(id));
            assert!(q.len_raw() <= 65, "heap grew: {}", q.len_raw());
        }
        assert!(q.pop().is_none());
        assert_eq!(q.events_processed(), 0);
    }

    #[test]
    fn compaction_preserves_order_and_ties() {
        let mut q = EventQueue::new();
        let mut keep = Vec::new();
        // Interleave kept and cancelled events, with timestamp ties.
        for round in 0..2_000u64 {
            let a = q.schedule(t(round / 4 + 1), round * 2);
            let b = q.schedule(t(round / 4 + 1), round * 2 + 1);
            q.cancel(a);
            keep.push(b);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let expected: Vec<u64> = (0..2_000u64).map(|r| r * 2 + 1).collect();
        assert_eq!(order, expected, "insertion-order ties survive compaction");
    }

    #[test]
    fn schedule_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(t(5), 1);
        q.pop();
        q.schedule(t(5), 2);
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
    }
}
