//! Cancellable, deterministic event queue with pooled payload storage.
//!
//! Events are ordered by timestamp; ties are broken by insertion order so a
//! simulation is fully deterministic given the same schedule calls. Events can
//! be cancelled in amortized `O(1)` via the [`EventId`] handle returned at
//! scheduling time.
//!
//! Payloads live in a slot pool with generation counters: scheduling reuses
//! freed slots instead of allocating, so a steady-state simulation that
//! schedules and fires events at a bounded concurrency performs no heap
//! allocation after warm-up ([`EventQueue::pool_capacity`] exposes the
//! high-water mark for regression tests). Cancelled entries are skipped lazily
//! on pop, and the heap is compacted in place whenever tombstones outnumber
//! live entries so cancel-heavy workloads cannot grow the heap (or pop
//! latency) without bound.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Handle to a scheduled event, used for cancellation.
///
/// ```
/// use pictor_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// let id = q.schedule(SimTime::from_nanos(10), "x");
/// assert!(q.cancel(id));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    fn encode(slot: u32, gen: u32) -> Self {
        EventId((u64::from(gen) << 32) | u64::from(slot))
    }

    fn slot(self) -> u32 {
        (self.0 & 0xffff_ffff) as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Heap entry: ordering key plus the pool slot holding the payload.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Debug)]
struct Slot<E> {
    /// Incremented whenever the slot's payload is taken (fired or cancelled),
    /// invalidating outstanding handles and heap entries referring to it.
    gen: u32,
    payload: Option<E>,
}

/// Priority queue of timestamped events with deterministic tie-breaking.
///
/// The queue enforces that time never flows backwards: popping returns events
/// in non-decreasing time order, and [`EventQueue::now`] tracks the timestamp
/// of the last popped event.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    /// Events scheduled but not yet fired or cancelled.
    live: usize,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The timestamp of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far (cancelled events excluded).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedules `payload` to fire at `time` and returns a cancellation handle.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current queue time — an event in
    /// the past indicates a model bug.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        assert!(
            time >= self.now,
            "scheduled event at {time} before now ({})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.payload.is_none());
                s.payload = Some(payload);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("event pool overflow");
                self.slots.push(Slot {
                    gen: 0,
                    payload: Some(payload),
                });
                slot
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.heap.push(HeapEntry {
            time,
            seq,
            slot,
            gen,
        });
        self.live += 1;
        EventId::encode(slot, gen)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired or been cancelled.
    /// Amortized `O(1)`: when tombstones outnumber live entries the heap is
    /// rebuilt without them (an `O(n)` pass paid for by the ≥ n/2 cancels
    /// that preceded it).
    pub fn cancel(&mut self, id: EventId) -> bool {
        let slot = id.slot() as usize;
        let Some(s) = self.slots.get_mut(slot) else {
            return false;
        };
        if s.gen != id.gen() || s.payload.is_none() {
            return false;
        }
        s.payload = None;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(id.slot());
        self.live -= 1;
        if self.heap.len() > 2 * self.live + 64 {
            self.compact();
        }
        true
    }

    /// Rebuilds the heap retaining only live entries, reusing its buffer.
    fn compact(&mut self) {
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.retain(|e| self.slots[e.slot as usize].gen == e.gen);
        self.heap = BinaryHeap::from(entries);
    }

    /// Releases the payload slot for `entry`, returning the payload if the
    /// entry is still live.
    fn take(&mut self, entry: HeapEntry) -> Option<E> {
        let s = &mut self.slots[entry.slot as usize];
        if s.gen != entry.gen {
            return None; // cancelled
        }
        let payload = s.payload.take().expect("live slot must hold a payload");
        s.gen = s.gen.wrapping_add(1);
        self.free.push(entry.slot);
        self.live -= 1;
        Some(payload)
    }

    /// Pops the earliest live event, advancing the queue clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if let Some(payload) = self.take(entry) {
                self.now = entry.time;
                self.popped += 1;
                return Some((entry.time, payload));
            }
        }
        None
    }

    /// Timestamp of the earliest live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.slots[entry.slot as usize].gen != entry.gen {
                self.heap.pop();
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Pops every live event with `time <= deadline` into `out`, in firing
    /// order, advancing the queue clock through them. Returns the number of
    /// events drained.
    ///
    /// The caller owns (and re-uses) `out`, so a steady-state drain loop
    /// performs no allocation once `out`'s capacity has warmed up.
    pub fn drain_until(&mut self, deadline: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        let mut n = 0;
        while let Some(t) = self.peek_time() {
            if t > deadline {
                break;
            }
            let (time, payload) = self.pop().expect("peeked event must pop");
            out.push((time, payload));
            n += 1;
        }
        n
    }

    /// True if no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Number of entries currently in the heap (including not-yet-skipped
    /// cancelled entries). Intended for capacity diagnostics.
    pub fn len_raw(&self) -> usize {
        self.heap.len()
    }

    /// Number of payload slots ever allocated — the pool's high-water mark.
    ///
    /// Stays at the peak concurrent event count regardless of how many events
    /// flow through, which is what the pool-reuse regression tests pin.
    pub fn pool_capacity(&self) -> usize {
        self.slots.len()
    }
}

/// A fixed set of [`EventQueue`] shards with a deterministic cross-shard
/// merge.
///
/// Sharding partitions a simulation's events (e.g. one shard per server
/// group) so each shard keeps its own pooled storage and insertion-order
/// tie-breaking, while [`ShardedQueues::pop_min`] merges them in
/// **(time, shard, insertion)** order — a total order that depends only on
/// the schedule calls, never on how many shards exist elsewhere or which
/// thread drives the loop.
///
/// ```
/// use pictor_sim::{ShardedQueues, SimTime};
/// let mut q = ShardedQueues::new(2);
/// q.schedule(1, SimTime::from_nanos(5), "b");
/// q.schedule(0, SimTime::from_nanos(5), "a");
/// assert_eq!(q.pop_min(), Some((SimTime::from_nanos(5), 0, "a")));
/// assert_eq!(q.pop_min(), Some((SimTime::from_nanos(5), 1, "b")));
/// ```
#[derive(Debug)]
pub struct ShardedQueues<E> {
    shards: Vec<EventQueue<E>>,
}

impl<E> ShardedQueues<E> {
    /// Creates `shards` empty queues.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedQueues {
            shards: (0..shards).map(|_| EventQueue::new()).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Schedules `payload` on `shard` at `time`.
    pub fn schedule(&mut self, shard: usize, time: SimTime, payload: E) -> EventId {
        self.shards[shard].schedule(time, payload)
    }

    /// Cancels an event previously scheduled on `shard`.
    pub fn cancel(&mut self, shard: usize, id: EventId) -> bool {
        self.shards[shard].cancel(id)
    }

    /// The earliest `(time, shard)` over all shards, ties to the lowest
    /// shard index.
    pub fn peek_min(&mut self) -> Option<(SimTime, usize)> {
        let mut best: Option<(SimTime, usize)> = None;
        for shard in 0..self.shards.len() {
            if let Some(t) = self.shards[shard].peek_time() {
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, shard));
                }
            }
        }
        best
    }

    /// Pops the globally earliest event in (time, shard, insertion) order.
    pub fn pop_min(&mut self) -> Option<(SimTime, usize, E)> {
        let (_, shard) = self.peek_min()?;
        let (time, payload) = self.shards[shard].pop().expect("peeked shard must pop");
        Some((time, shard, payload))
    }

    /// Pops every event with `time <= deadline` into `out` as
    /// `(time, shard, payload)`, in merge order. Returns the count.
    pub fn drain_until(&mut self, deadline: SimTime, out: &mut Vec<(SimTime, usize, E)>) -> usize {
        let mut n = 0;
        while let Some((t, _)) = self.peek_min() {
            if t > deadline {
                break;
            }
            out.push(self.pop_min().expect("peeked event must pop"));
            n += 1;
        }
        n
    }

    /// True if no live events remain on any shard.
    pub fn is_empty(&mut self) -> bool {
        self.peek_min().is_none()
    }

    /// Sum of every shard's payload-pool high-water mark.
    pub fn pool_capacity(&self) -> usize {
        self.shards.iter().map(EventQueue::pool_capacity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        let b = q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert!(!q.cancel(EventId(999)), "unknown id reports false");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(!q.cancel(b), "fired event cannot be cancelled");
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(7));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(5), ());
        q.pop();
        q.schedule(t(1), ());
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn mass_cancellation_compacts_heap() {
        // Regression: cancelled entries used to sit in the heap until
        // popped, so cancel-heavy workloads grew memory and pop latency
        // without bound. 100k schedules with 99% cancelled must leave a
        // heap proportional to the live count.
        let mut q = EventQueue::new();
        let mut ids = Vec::with_capacity(100_000);
        for i in 0..100_000u64 {
            ids.push(q.schedule(t(i + 1), i));
        }
        for (i, id) in ids.iter().enumerate() {
            if i % 100 != 0 {
                assert!(q.cancel(*id));
            }
        }
        let live = 1000;
        assert!(
            q.len_raw() <= 2 * live + 64,
            "tombstones not compacted: len_raw {}",
            q.len_raw()
        );
        let mut popped = 0u64;
        let mut last = SimTime::ZERO;
        while let Some((time, payload)) = q.pop() {
            assert!(time >= last, "time went backwards");
            assert_eq!(payload % 100, 0, "cancelled event fired");
            last = time;
            popped += 1;
        }
        assert_eq!(popped, live as u64);
    }

    #[test]
    fn schedule_cancel_interleaving_stays_bounded() {
        let mut q = EventQueue::new();
        for i in 0..100_000u64 {
            let id = q.schedule(t(i + 1), i);
            assert!(q.cancel(id));
            assert!(q.len_raw() <= 65, "heap grew: {}", q.len_raw());
        }
        assert!(q.pop().is_none());
        assert_eq!(q.events_processed(), 0);
    }

    #[test]
    fn compaction_preserves_order_and_ties() {
        let mut q = EventQueue::new();
        let mut keep = Vec::new();
        // Interleave kept and cancelled events, with timestamp ties.
        for round in 0..2_000u64 {
            let a = q.schedule(t(round / 4 + 1), round * 2);
            let b = q.schedule(t(round / 4 + 1), round * 2 + 1);
            q.cancel(a);
            keep.push(b);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let expected: Vec<u64> = (0..2_000u64).map(|r| r * 2 + 1).collect();
        assert_eq!(order, expected, "insertion-order ties survive compaction");
    }

    #[test]
    fn schedule_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(t(5), 1);
        q.pop();
        q.schedule(t(5), 2);
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn stale_handle_for_reused_slot_does_not_cancel() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.pop(); // fires "a", freeing its slot
        let b = q.schedule(t(2), "b"); // reuses the slot with a bumped gen
        assert!(!q.cancel(a), "stale handle must not cancel the new event");
        assert!(q.cancel(b));
    }

    #[test]
    fn drain_until_pops_in_order_up_to_deadline() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        let c = q.schedule(t(15), 99);
        q.schedule(t(20), 2);
        q.cancel(c);
        let mut out = Vec::new();
        assert_eq!(q.drain_until(t(20), &mut out), 2);
        assert_eq!(out, vec![(t(10), 1), (t(20), 2)]);
        assert_eq!(q.now(), t(20));
        // The remaining event fires on the next drain; `out` is caller-owned
        // and appended to, never cleared.
        assert_eq!(q.drain_until(t(40), &mut out), 1);
        assert_eq!(out.len(), 3);
        assert_eq!(q.events_processed(), 3);
    }

    #[test]
    fn pool_reuses_slots_across_100k_events() {
        // Regression: 100k events flowing through at bounded concurrency
        // must not grow the payload pool beyond the peak live count — the
        // queue recycles slots instead of allocating per event.
        let mut q = EventQueue::new();
        let waves = 100u64;
        let per_wave = 1_000u64;
        for wave in 0..waves {
            for i in 0..per_wave {
                q.schedule(t(wave * per_wave + i + 1), i);
            }
            // Cancel a sliver to exercise the free list from both paths.
            let id = q.schedule(t(wave * per_wave + per_wave), per_wave);
            assert!(q.cancel(id));
            while q.pop().is_some() {}
            assert!(
                q.pool_capacity() <= (per_wave + 1) as usize,
                "pool grew past peak concurrency: {}",
                q.pool_capacity()
            );
        }
        assert_eq!(q.events_processed(), waves * per_wave);
        assert_eq!(q.pool_capacity(), (per_wave + 1) as usize);
    }

    #[test]
    fn sharded_merge_orders_by_time_then_shard_then_insertion() {
        let mut q = ShardedQueues::new(3);
        q.schedule(2, t(5), "s2-a");
        q.schedule(0, t(5), "s0-a");
        q.schedule(0, t(5), "s0-b");
        q.schedule(1, t(3), "s1-early");
        q.schedule(1, t(5), "s1-a");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop_min().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec!["s1-early", "s0-a", "s0-b", "s1-a", "s2-a"]);
        assert!(q.is_empty());
    }

    #[test]
    fn sharded_cancel_and_drain() {
        let mut q = ShardedQueues::new(2);
        let a = q.schedule(0, t(1), 1);
        q.schedule(1, t(2), 2);
        q.schedule(0, t(9), 3);
        assert!(q.cancel(0, a));
        let mut out = Vec::new();
        assert_eq!(q.drain_until(t(5), &mut out), 1);
        assert_eq!(out, vec![(t(2), 1usize, 2)]);
        assert_eq!(q.peek_min(), Some((t(9), 0)));
    }

    #[test]
    fn sharded_pools_stay_per_shard() {
        let mut q = ShardedQueues::new(2);
        for wave in 0..50u64 {
            for i in 0..100u64 {
                q.schedule((i % 2) as usize, t(wave * 100 + i + 1), i);
            }
            while q.pop_min().is_some() {}
        }
        assert_eq!(q.shard_count(), 2);
        assert!(
            q.pool_capacity() <= 100,
            "pools grew past peak concurrency: {}",
            q.pool_capacity()
        );
    }
}
