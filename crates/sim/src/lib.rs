//! Discrete-event simulation substrate for the Pictor reproduction.
//!
//! This crate provides the simulation kernel every other crate builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time.
//! * [`EventQueue`] — a cancellable priority queue of timestamped events with
//!   deterministic FIFO tie-breaking.
//! * [`PsResource`] — a processor-sharing resource (CPU pools, PCIe links,
//!   network bandwidth) that recomputes per-job service rates whenever the
//!   active set changes.
//! * [`FifoResource`] — a single-server FIFO queue (GPU render engine).
//! * [`rng`] — deterministic, named random-number streams plus the handful of
//!   distributions the models need (normal, lognormal).
//! * [`stats`] — streaming summaries, percentile distributions and
//!   time-weighted utilization integrals used by the measurement framework.
//!
//! # Example
//!
//! ```
//! use pictor_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! queue.schedule(SimTime::ZERO + SimDuration::from_millis(5), "later");
//! queue.schedule(SimTime::ZERO + SimDuration::from_millis(1), "sooner");
//! let (t, ev) = queue.pop().expect("event");
//! assert_eq!(ev, "sooner");
//! assert_eq!(t, SimTime::from_nanos(1_000_000));
//! ```

pub mod clock;
pub mod event;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use clock::SimClock;
pub use event::{EventId, EventQueue, ShardedQueues};
pub use resource::{FifoResource, JobId, PsResource};
pub use rng::SeedTree;
pub use stats::{Distribution, P2Quantile, Summary, TailQuantiles, TimeWeighted};
pub use time::{SimDuration, SimTime};
