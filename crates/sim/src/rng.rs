//! Deterministic random-number streams and sampling helpers.
//!
//! Every stochastic model in the reproduction draws from a [`SeedTree`]: a
//! master seed from which independent, *named* streams are derived by hashing.
//! Re-running an experiment with the same master seed therefore reproduces it
//! bit-for-bit, while different components never share a stream.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Derives independent named RNG streams from a master seed.
///
/// # Example
///
/// ```
/// use pictor_sim::SeedTree;
/// use rand::Rng;
///
/// let tree = SeedTree::new(42);
/// let mut a = tree.stream("network");
/// let mut b = tree.stream("gpu");
/// // Streams are deterministic and independent.
/// let x: u64 = a.gen();
/// let mut a2 = tree.stream("network");
/// assert_eq!(x, a2.gen::<u64>());
/// let _ = b.gen::<u64>();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    master: u64,
}

impl SeedTree {
    /// Creates a tree rooted at `master`.
    pub fn new(master: u64) -> Self {
        SeedTree { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the seed for a named stream (FNV-1a over the name, mixed with
    /// the master seed via splitmix64).
    pub fn seed_for(&self, name: &str) -> u64 {
        splitmix64(self.master ^ fnv1a(FNV_OFFSET, name.as_bytes()))
    }

    /// Seed for an indexed stream name: identical to
    /// `seed_for(&format!("{prefix}{index}"))` but allocation-free — hot
    /// paths derive per-instance seeds without building the string.
    pub fn seed_for_indexed(&self, prefix: &str, index: u64) -> u64 {
        let h = fnv1a_u64(fnv1a(FNV_OFFSET, prefix.as_bytes()), index);
        splitmix64(self.master ^ h)
    }

    /// Creates the RNG for a named stream.
    pub fn stream(&self, name: &str) -> SmallRng {
        SmallRng::seed_from_u64(self.seed_for(name))
    }

    /// RNG for the indexed stream `{prefix}{index}` without allocating —
    /// equal to `stream(&format!("{prefix}{index}"))`.
    pub fn stream_indexed(&self, prefix: &str, index: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.seed_for_indexed(prefix, index))
    }

    /// Derives a child tree (e.g. per benchmark instance).
    pub fn child(&self, name: &str) -> SeedTree {
        SeedTree {
            master: self.seed_for(name),
        }
    }

    /// Derives the child `{prefix}{index}` without allocating — equal to
    /// `child(&format!("{prefix}{index}"))`.
    pub fn child_indexed(&self, prefix: &str, index: u64) -> SeedTree {
        SeedTree {
            master: self.seed_for_indexed(prefix, index),
        }
    }

    /// Derives the child `{prefix}{a}{mid}{b}` without allocating — equal to
    /// `child(&format!("{prefix}{a}{mid}{b}"))` (e.g. `server-3/e7`).
    pub fn child_indexed2(&self, prefix: &str, a: u64, mid: &str, b: u64) -> SeedTree {
        let h = fnv1a_u64(fnv1a(FNV_OFFSET, prefix.as_bytes()), a);
        let h = fnv1a_u64(fnv1a(h, mid.as_bytes()), b);
        SeedTree {
            master: splitmix64(self.master ^ h),
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for byte in bytes {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Feeds the decimal digits of `index` to FNV-1a via a stack buffer, so the
/// result matches hashing the formatted string without the allocation.
fn fnv1a_u64(h: u64, index: u64) -> u64 {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = index;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    fnv1a(h, &buf[i..])
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Samples a standard normal via Box–Muller.
///
/// `rand` 0.8 without `rand_distr` has no normal distribution; this is the
/// textbook polar-free variant, adequate for workload models.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `N(mean, std)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// Samples `N(mean, std)` truncated to `[lo, hi]` by clamping.
///
/// Clamping (rather than rejection) keeps the draw count deterministic per
/// call, which matters for stream reproducibility.
pub fn normal_clamped<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64, lo: f64, hi: f64) -> f64 {
    normal(rng, mean, std).clamp(lo, hi)
}

/// Samples a lognormal with the given *linear-space* mean and coefficient of
/// variation (std/mean). Latency-like quantities use this shape: strictly
/// positive with a heavy right tail.
///
/// # Panics
///
/// Panics if `mean <= 0` or `cv < 0`.
pub fn lognormal_mean_cv<R: Rng + ?Sized>(rng: &mut R, mean: f64, cv: f64) -> f64 {
    assert!(mean > 0.0, "lognormal mean must be positive: {mean}");
    assert!(cv >= 0.0, "cv must be non-negative: {cv}");
    if cv == 0.0 {
        return mean;
    }
    let sigma2 = (1.0 + cv * cv).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    (mu + sigma2.sqrt() * standard_normal(rng)).exp()
}

/// Samples an exponential with the given mean.
///
/// # Panics
///
/// Panics if `mean` is not strictly positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive: {mean}");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Samples a geometric inter-arrival gap: the number of trials (≥ 1) until
/// the first success at per-trial probability `p`, via the inverse CDF —
/// exactly one `f64` draw per call, so draw counts stay deterministic.
/// Discrete hazards (per-epoch fault injection) use this shape.
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1]`.
pub fn geometric<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    assert!(
        p > 0.0 && p <= 1.0 && p.is_finite(),
        "geometric probability must be in (0, 1]: {p}"
    );
    if p >= 1.0 {
        return 1;
    }
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let k = (u.ln() / (1.0 - p).ln()).ceil();
    if k >= u64::MAX as f64 {
        u64::MAX
    } else {
        (k as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let t = SeedTree::new(7);
        let mut a = t.stream("x");
        let mut b = t.stream("x");
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn streams_differ_by_name() {
        let t = SeedTree::new(7);
        assert_ne!(t.seed_for("x"), t.seed_for("y"));
        assert_ne!(t.seed_for("x"), t.seed_for("x2"));
    }

    #[test]
    fn trees_differ_by_master() {
        assert_ne!(
            SeedTree::new(1).seed_for("x"),
            SeedTree::new(2).seed_for("x")
        );
    }

    #[test]
    fn child_trees_nest() {
        let t = SeedTree::new(3);
        let c1 = t.child("instance-1");
        let c2 = t.child("instance-2");
        assert_ne!(c1.seed_for("al"), c2.seed_for("al"));
        assert_eq!(c1.master(), t.child("instance-1").master());
    }

    #[test]
    fn indexed_children_match_formatted_names() {
        let t = SeedTree::new(41);
        for i in [0u64, 1, 9, 10, 42, 999, 12_345, u64::MAX] {
            assert_eq!(
                t.child_indexed("instance-", i).master(),
                t.child(&format!("instance-{i}")).master(),
                "instance-{i}"
            );
            assert_eq!(
                t.seed_for_indexed("driver-", i),
                t.seed_for(&format!("driver-{i}")),
                "driver-{i}"
            );
        }
        for (a, b) in [(0u64, 0u64), (3, 7), (120, 4_000)] {
            assert_eq!(
                t.child_indexed2("server-", a, "/e", b).master(),
                t.child(&format!("server-{a}/e{b}")).master(),
                "server-{a}/e{b}"
            );
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = SeedTree::new(11).stream("normal");
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean={mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std={}", var.sqrt());
    }

    #[test]
    fn lognormal_mean_matches() {
        let mut rng = SeedTree::new(13).stream("ln");
        let n = 40_000;
        let mean = (0..n)
            .map(|_| lognormal_mean_cv(&mut rng, 10.0, 0.3))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 10.0).abs() < 0.15, "mean={mean}");
    }

    #[test]
    fn lognormal_zero_cv_is_constant() {
        let mut rng = SeedTree::new(13).stream("ln0");
        assert_eq!(lognormal_mean_cv(&mut rng, 4.2, 0.0), 4.2);
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = SeedTree::new(17).stream("lnpos");
        for _ in 0..5_000 {
            assert!(lognormal_mean_cv(&mut rng, 1.0, 2.0) > 0.0);
        }
    }

    #[test]
    fn exponential_mean_matches() {
        let mut rng = SeedTree::new(19).stream("exp");
        let n = 40_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn geometric_mean_matches() {
        let mut rng = SeedTree::new(29).stream("geo");
        let n = 40_000;
        let p = 0.2;
        let mean = (0..n).map(|_| geometric(&mut rng, p)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 1.0 / p).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn geometric_is_at_least_one() {
        let mut rng = SeedTree::new(31).stream("geo1");
        for _ in 0..5_000 {
            assert!(geometric(&mut rng, 0.9) >= 1);
        }
        assert_eq!(geometric(&mut rng, 1.0), 1);
    }

    #[test]
    fn geometric_rare_events_have_long_gaps() {
        let mut rng = SeedTree::new(37).stream("geo-rare");
        let n = 2_000;
        let mean = (0..n).map(|_| geometric(&mut rng, 1e-3)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 1000.0).abs() < 100.0, "mean={mean}");
    }

    #[test]
    fn clamped_normal_respects_bounds() {
        let mut rng = SeedTree::new(23).stream("clamp");
        for _ in 0..2_000 {
            let x = normal_clamped(&mut rng, 0.0, 10.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }
}
